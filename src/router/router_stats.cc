#include "router/router_stats.h"

#include <cstdio>

namespace oct {
namespace router {

std::string RouterStatsSnapshot::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu routed=%llu unrouted=%llu shed=%llu "
      "(queue_full=%llu deadline=%llu) degraded=%llu errors=%llu "
      "batches=%llu cache=%llu/%llu deduped=%llu queue_depth=%lld "
      "index_version=%lld shed_rate=%.3f",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(routed),
      static_cast<unsigned long long>(unrouted),
      static_cast<unsigned long long>(TotalShed()),
      static_cast<unsigned long long>(shed_queue_full),
      static_cast<unsigned long long>(shed_deadline),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_hits + cache_misses),
      static_cast<unsigned long long>(deduped),
      static_cast<long long>(queue_depth),
      static_cast<long long>(index_version), ShedRate());
  return buf;
}

RouterStats::RouterStats()
    : requests_(registry_.GetCounter(
          "router.requests", "Requests admitted into the routing queue")),
      routed_(registry_.GetCounter(
          "router.routed", "Requests answered with a non-empty ranking")),
      unrouted_(registry_.GetCounter(
          "router.unrouted",
          "Requests answered OK with no category above the Jaccard floor")),
      shed_queue_full_(registry_.GetCounter(
          "router.shed_queue_full",
          "Requests rejected at admission: queue at capacity")),
      shed_deadline_(registry_.GetCounter(
          "router.shed_deadline",
          "Requests dropped: deadline expired before scoring began")),
      degraded_(registry_.GetCounter(
          "router.degraded",
          "Requests cut short mid-descent, answered best-so-far")),
      errors_(registry_.GetCounter(
          "router.errors", "Requests failed by resolve/score errors")),
      batches_(registry_.GetCounter("router.batches",
                                    "Worker batches drained from the queue")),
      cache_hits_(registry_.GetCounter(
          "router.cache_hits",
          "Head-query result-cache hits (per-version cache)")),
      cache_misses_(registry_.GetCounter(
          "router.cache_misses",
          "Head-query result-cache misses (computed and inserted)")),
      deduped_(registry_.GetCounter(
          "router.deduped",
          "Requests answered by an identical leader in the same batch")),
      queue_depth_(registry_.GetGauge("router.queue_depth",
                                      "Requests waiting in the queue")),
      cache_size_(registry_.GetGauge("router.cache_size",
                                     "Entries in the head-query result "
                                     "cache")),
      index_version_(registry_.GetGauge(
          "router.index_version",
          "TreeSnapshot version of the most recently pinned RouteIndex")),
      route_us_(registry_.GetHistogram(
          "router.route_us", "End-to-end route latency (admit to answer)",
          "us")),
      queue_us_(registry_.GetHistogram(
          "router.queue_us", "Time spent waiting in the queue", "us")),
      batch_size_(registry_.GetHistogram(
          "router.batch_size", "Requests drained per worker batch", "")) {}

RouterStatsSnapshot RouterStats::Snapshot() const {
  RouterStatsSnapshot s;
  s.requests = requests_->Value();
  s.routed = routed_->Value();
  s.unrouted = unrouted_->Value();
  s.shed_queue_full = shed_queue_full_->Value();
  s.shed_deadline = shed_deadline_->Value();
  s.degraded = degraded_->Value();
  s.errors = errors_->Value();
  s.batches = batches_->Value();
  s.cache_hits = cache_hits_->Value();
  s.cache_misses = cache_misses_->Value();
  s.deduped = deduped_->Value();
  s.queue_depth = queue_depth_->Value();
  s.cache_size = cache_size_->Value();
  s.index_version = index_version_->Value();
  return s;
}

}  // namespace router
}  // namespace oct
