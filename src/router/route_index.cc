#include "router/route_index.h"

#include <algorithm>
#include <utility>

#include "kernel/bitset.h"
#include "kernel/pairwise.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oct {
namespace router {

std::shared_ptr<const RouteIndex> RouteIndex::Build(
    std::shared_ptr<const serve::TreeSnapshot> snapshot,
    const kernel::ItemSetIndexOptions& options) {
  OCT_CHECK(snapshot != nullptr);
  OCT_SPAN("router/index_build");
  Timer timer;
  auto index = std::shared_ptr<RouteIndex>(new RouteIndex());
  index->snapshot_ = std::move(snapshot);

  const CategoryTree& tree = index->snapshot_->tree();
  std::vector<ItemSet> node_sets = tree.ComputeItemSets();

  // Universe: snapshot trees carry the original (dense) item ids, so the
  // universe is one past the largest placed item. The root's full set is
  // the union of everything placed.
  size_t universe = 0;
  if (!node_sets.empty() && !node_sets[tree.root()].empty()) {
    universe = static_cast<size_t>(node_sets[tree.root()].items().back()) + 1;
  }
  index->node_input_.set_universe_size(universe);
  for (size_t n = 0; n < node_sets.size(); ++n) {
    index->node_input_.Add(std::move(node_sets[n]), /*weight=*/1.0,
                           tree.node(static_cast<NodeId>(n)).label);
  }
  index->index_ = kernel::ItemSetIndex::Build(index->node_input_, options);

  // Subtree node counts (itself included) in one post-order pass — the
  // "how much did pruning skip" accounting of ScoreTopK.
  index->subtree_nodes_.assign(index->node_input_.num_sets(), 1);
  for (NodeId n : tree.PostOrder()) {
    for (NodeId child : tree.node(n).children) {
      index->subtree_nodes_[n] += index->subtree_nodes_[child];
    }
  }

  index->build_seconds_ = timer.ElapsedSeconds();
  static obs::Counter* builds = obs::MetricsRegistry::Default()->GetCounter(
      "router.index_builds_total",
      "RouteIndex builds across all routers (one per installed snapshot)");
  builds->Increment();
  return index;
}

size_t RouteIndex::Overlap(const ItemSet& query, NodeId node) const {
  const kernel::BitSet* bitmap = index_.bitmap(node);
  if (bitmap != nullptr) return bitmap->IntersectionCount(query);
  return node_input_.set(node).items.IntersectionSize(query);
}

ScoreStats RouteIndex::ScoreTopK(const ItemSet& query, size_t top_k,
                                 double min_jaccard,
                                 const fault::CancelToken* cancel,
                                 std::vector<NodeScore>* out,
                                 size_t max_nodes) const {
  OCT_SPAN("router/score");
  ScoreStats stats;
  out->clear();
  if (query.empty() || node_input_.num_sets() == 0) return stats;

  // Queries come from the live engine; the tree's item universe can lag it
  // (items added after the last rebuild). Items outside the universe cannot
  // intersect any category, so clip the probe set — the bitmap probe indexes
  // by item id and must stay in bounds — while Jaccard keeps the full |q|.
  const ItemSet* probe = &query;
  ItemSet clipped;
  if (static_cast<size_t>(query.items().back()) >=
      node_input_.universe_size()) {
    std::vector<ItemId> in_universe;
    for (ItemId id : query.items()) {
      if (static_cast<size_t>(id) < node_input_.universe_size()) {
        in_universe.push_back(id);
      } else {
        break;  // Sorted: everything after is out of universe too.
      }
    }
    clipped = ItemSet::FromSorted(std::move(in_universe));
    probe = &clipped;
  }
  if (probe->empty()) return stats;

  // Prefix-filter bound: any category with Jaccard >= t shares at least
  // this many items with q. Subtree sets are nested, so a node below the
  // bound prunes its whole subtree. The bound is always >= 1, so disjoint
  // subtrees are never descended even at t == 0.
  const size_t min_overlap =
      kernel::MinOverlapForJaccard(query.size(), min_jaccard);
  const double q_size = static_cast<double>(query.size());

  const CategoryTree& tree = snapshot_->tree();
  std::vector<NodeId> todo;
  todo.push_back(tree.root());
  while (!todo.empty()) {
    // Poll the budget every 16 visits (and before the first) so small trees
    // still honour an already-expired token deterministically.
    if ((stats.nodes_visited & 15) == 0 &&
        (fault::Cancelled(cancel) ||
         (max_nodes != 0 && stats.nodes_visited >= max_nodes))) {
      stats.degraded = true;
      break;
    }
    const NodeId node = todo.back();
    todo.pop_back();
    ++stats.nodes_visited;

    const size_t overlap = Overlap(*probe, node);
    if (overlap < min_overlap) {
      // The node itself was visited; its descendants are the skipped work.
      stats.nodes_pruned += subtree_nodes_[node] - 1;
      continue;
    }
    if (node != tree.root()) {
      const double c_size = static_cast<double>(node_size(node));
      const double inter = static_cast<double>(overlap);
      NodeScore score;
      score.node = node;
      score.overlap = static_cast<uint32_t>(overlap);
      score.jaccard = inter / (q_size + c_size - inter);
      score.containment = inter / q_size;
      score.depth = static_cast<uint32_t>(snapshot_->DepthOf(node));
      // The overlap bound is necessary, not sufficient — re-check the
      // actual Jaccard (with the same epsilon slack the bound derivation
      // uses, so boundary sets are kept, never dropped).
      if (score.jaccard + 1e-12 >= min_jaccard) out->push_back(score);
    }
    // Reverse order so the explicit stack pops children ascending — the
    // deterministic pre-order both the batched path and the oracle share.
    const auto& children = tree.node(node).children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      todo.push_back(*it);
    }
  }

  std::sort(out->begin(), out->end(),
            [](const NodeScore& a, const NodeScore& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              if (a.depth != b.depth) return a.depth > b.depth;
              return a.node < b.node;
            });
  if (top_k != 0 && out->size() > top_k) out->resize(top_k);
  return stats;
}

}  // namespace router
}  // namespace oct
