// Text → data::Query parsing for the /route endpoint and CLI tools.
//
// Accepted token forms (tokens separated by spaces, '+', or commas):
//   nike            bare value word, resolved against every attribute
//                   vocabulary ("nike" → brand=nike)
//   brand=nike      attribute name = value name
//   1:3             numeric attribute:value indices (scripting/bench form)
//
// so `/route?q=nike+shirt` and `/route?q=0:0,1:2` both work. Unknown words
// or out-of-range indices yield InvalidArgument (HTTP 400 upstream).

#ifndef OCT_ROUTER_QUERY_PARSE_H_
#define OCT_ROUTER_QUERY_PARSE_H_

#include <string>

#include "data/catalog.h"
#include "data/search_engine.h"
#include "util/status.h"

namespace oct {
namespace router {

/// Parses `text` into a conjunctive query against `catalog`'s schema.
/// InvalidArgument when empty or any token fails to resolve.
Result<data::Query> ParseQuery(const std::string& text,
                               const data::Catalog& catalog);

}  // namespace router
}  // namespace oct

#endif  // OCT_ROUTER_QUERY_PARSE_H_
