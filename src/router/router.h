// oct::router — online query→category routing against the live tree.
//
// The Router is the serving front end ROADMAP item 4 asks for: a user query
// comes in, its result set is resolved through the data::SearchEngine
// substrate, and the result set is scored against every candidate category
// of the *current* serve::TreeSnapshot via a per-snapshot RouteIndex
// (kernel::ItemSetIndex bitmaps + prefix-filter pruned root→leaf descent).
// The answer is a ranked list of category paths.
//
// Serving shape (the obs/expose acceptor idiom, applied to routing):
//
//   Submit()/Route() ──> bounded queue ──> worker pool, draining batches
//        │                                      │
//        │  admission control:                  │  pins ONE RouteIndex
//        │  - queue full      -> shed           │  (and thus one snapshot)
//        │  - deadline passed -> shed           │  per *batch*, so a batch's
//        └─ both counted in router.shed_*       └─ answers are mutually
//                                                  consistent under
//                                                  concurrent publishes
//
// Deadlines are anytime: a request whose budget expires mid-descent gets a
// valid best-so-far ranking with Status kDeadlineExceeded and the degraded
// flag — the library-wide fault::CancelToken convention. A request whose
// budget is already gone when a worker picks it up is shed without scoring.
//
// Failpoints: router.enqueue (admission), router.batch (worker drain),
// router.resolve (result-set resolution), router.score (descent).

#ifndef OCT_ROUTER_ROUTER_H_
#define OCT_ROUTER_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/search_engine.h"
#include "fault/cancel.h"
#include "kernel/item_set_index.h"
#include "obs/trace_context.h"
#include "router/route_index.h"
#include "router/router_stats.h"
#include "serve/tree_store.h"
#include "util/status.h"
#include "util/timer.h"

namespace oct {
namespace router {

struct RouterOptions {
  /// Worker threads draining the queue.
  size_t num_workers = 4;
  /// Admission bound: Submit() sheds (kResourceExhausted) when this many
  /// requests are already waiting.
  size_t max_queue = 1024;
  /// Most requests one worker drains per batch. Larger batches amortize the
  /// snapshot pin; smaller ones bound per-batch staleness.
  size_t max_batch = 32;
  /// Default ranking size when a request does not override it.
  size_t top_k = 5;
  /// Default Jaccard floor: categories scoring below it are not answers.
  double min_jaccard = 0.05;
  /// Relevance threshold for result-set resolution (the paper's 0.8).
  double relevance_threshold = 0.8;
  /// Per-request wall-clock budget applied when a request carries none
  /// (0 = unlimited).
  double default_deadline_seconds = 0.0;
  /// Head-query result cache: LRU capacity in entries (0 disables). The
  /// cache is tagged with the pinned RouteIndex version and cleared on the
  /// first request after a publish, so it can never serve a stale tree's
  /// ranking. Only clean answers (OK, not degraded) are cached; RouteSerial
  /// bypasses it so the oracle stays pure.
  size_t cache_capacity = 0;
  /// Passed through to RouteIndex::Build at snapshot install.
  kernel::ItemSetIndexOptions index_options;
};

struct RouteRequest {
  data::Query query;
  /// 0 → RouterOptions::top_k.
  size_t top_k = 0;
  /// < 0 → RouterOptions::min_jaccard.
  double min_jaccard = -1.0;
  /// Wall-clock budget from admission (0 → RouterOptions default). The
  /// request degrades to best-so-far past it, or is shed if it expires
  /// before scoring begins.
  double deadline_seconds = 0.0;
  /// Deterministic descent budget in visited nodes (0 = unlimited) — the
  /// testable twin of the wall-clock deadline.
  size_t max_score_nodes = 0;
};

/// One ranked answer: a category and its root→node breadcrumb.
struct RoutedCategory {
  NodeId node = kInvalidNode;
  /// Labels root→node ("Fashion" > "Shoes" > "Sneakers").
  std::vector<std::string> path;
  double jaccard = 0.0;
  double containment = 0.0;
  uint32_t overlap = 0;
  uint32_t depth = 0;
};

struct RouteResult {
  /// OK, kResourceExhausted (shed: queue full), kDeadlineExceeded (shed or
  /// degraded), kInvalidArgument (malformed query), kFailedPrecondition
  /// (no published tree), or an injected/real internal error.
  Status status;
  /// Version of the snapshot the ranking was computed against (0 if the
  /// request never reached scoring).
  serve::TreeVersion version = 0;
  /// Ranked categories, best first. Valid (possibly truncated) even when
  /// status is kDeadlineExceeded with degraded set.
  std::vector<RoutedCategory> ranked;
  /// Result-set size of the query at the relevance threshold.
  size_t result_set_size = 0;
  /// Descent cut short; `ranked` is best-so-far.
  bool degraded = false;
  /// Rejected before scoring (queue full or deadline already gone).
  bool shed = false;
  /// Descent accounting (nodes visited / pruned).
  ScoreStats score_stats;
  double queue_seconds = 0.0;
  /// Result-set resolution / descent+rank time inside ProcessOne (both 0
  /// for cache hits, dedup copies, and requests that never scored).
  double resolve_seconds = 0.0;
  double score_seconds = 0.0;
  double total_seconds = 0.0;
  /// Answered by copying a same-work-key leader's result in this batch.
  bool deduped = false;
  /// Trace identity of the request (0 when tracing was never in play).
  uint64_t trace_id = 0;
  /// Span id of the "router/route" span that computed the ranking; dedup
  /// followers parent their link span under it.
  uint64_t route_span_id = 0;
};

class Router {
 public:
  /// `store` and `engine` must outlive the router. Workers start on
  /// Start(), not construction.
  Router(const serve::TreeStore* store, const data::SearchEngine* engine,
         RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawns the worker pool. Idempotent.
  void Start();

  /// Drains every queued request (late answers beat dropped answers for
  /// requests already admitted), then joins the workers. Idempotent.
  /// Submit() sheds while stopping.
  void Stop();

  bool running() const;

  /// Async entry point: admission control, then enqueue. On OK, `done` is
  /// invoked exactly once from a worker thread with the result. On a
  /// non-OK return (queue full, expired deadline, stopped router, injected
  /// admission failure) `done` is never invoked and the request was shed.
  Status Submit(RouteRequest request, std::function<void(RouteResult)> done);

  /// Blocking entry point: Submit + wait. Shed requests come back as a
  /// RouteResult with the rejection status and shed=true.
  RouteResult Route(RouteRequest request);

  /// Serial oracle: resolves and scores `request` inline on the calling
  /// thread — no queue, no workers, no batching — against the same pinned
  /// index the batched path uses. The batched path must produce an
  /// identical ranking; tests and the bench hold the router to that.
  RouteResult RouteSerial(const RouteRequest& request) const;

  /// The RouteIndex for the store's current snapshot, building and caching
  /// it when the store has published a newer version. Thread-safe; nullptr
  /// before the first publish.
  std::shared_ptr<const RouteIndex> CurrentIndex() const;

  size_t queue_depth() const;

  const RouterStats& stats() const { return stats_; }
  const RouterOptions& options() const { return options_; }
  const data::SearchEngine& engine() const { return *engine_; }

 private:
  struct Pending {
    RouteRequest request;
    fault::CancelToken cancel;
    std::function<void(RouteResult)> done;
    double enqueue_elapsed = 0.0;  // queue-entry time on the admit timer
    /// Trace context carried across the queue: the submitter's ambient
    /// context, or one the router minted at admission (own_trace). The
    /// worker re-installs it, so cross-thread spans share the request's
    /// trace id and parent correctly.
    obs::TraceContext trace;
    /// Router minted the context, so the router reports the tail verdict;
    /// contexts handed in by the caller are finished by the caller (it
    /// sees serialization time the router cannot).
    bool own_trace = false;
  };

  void WorkerLoop();
  /// Resolve + score one request against `index`; fills everything but the
  /// queue timing fields.
  RouteResult ProcessOne(const RouteIndex& index, const RouteRequest& request,
                         const fault::CancelToken& cancel) const;
  /// ProcessOne through the head-query result cache (batched path only).
  RouteResult ProcessCached(const RouteIndex& index,
                            const RouteRequest& request,
                            const fault::CancelToken& cancel) const;
  /// Work identity of a request: query key + every knob that changes the
  /// answer. Two requests with equal work keys get identical results
  /// against the same index version.
  uint64_t WorkKeyFor(const RouteRequest& request) const;
  bool CacheLookup(uint64_t key, serve::TreeVersion version,
                   RouteResult* result) const;
  void CacheInsert(uint64_t key, serve::TreeVersion version,
                   const RouteResult& result) const;
  /// Terminal accounting shared by every answer path.
  void FinishResult(const RouteResult& result) const;

  const serve::TreeStore* store_;
  const data::SearchEngine* engine_;
  const RouterOptions options_;
  mutable RouterStats stats_;

  /// Index cache: rebuilt lazily when the store publishes a new version.
  /// A plain mutex (not atomic<shared_ptr>) — contention is once per batch,
  /// and TSan models mutexes natively (see serve::detail::SnapshotCell).
  mutable std::mutex index_mu_;
  mutable std::shared_ptr<const RouteIndex> index_cache_;

  /// Head-query result cache: LRU over work keys, valid for exactly one
  /// index version (`result_cache_version_`); cleared on version flip.
  struct CachedRoute {
    uint64_t key = 0;
    RouteResult result;
  };
  mutable std::mutex cache_mu_;
  mutable std::list<CachedRoute> result_cache_;  // Front = most recent.
  mutable std::unordered_map<uint64_t, std::list<CachedRoute>::iterator>
      result_cache_map_;
  mutable serve::TreeVersion result_cache_version_ = 0;

  mutable std::mutex mu_;  // Guards queue_, workers_, run state.
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
  Timer uptime_;  // Admission/queue timing base.
};

}  // namespace router
}  // namespace oct

#endif  // OCT_ROUTER_ROUTER_H_
