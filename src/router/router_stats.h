// RouterStats: counters, gauges, and latency histograms of the query
// router, backed by a per-instance obs::MetricsRegistry (the ServeStats
// pattern) so tests and multi-router processes get independent numbers
// while the standard JSON/Prometheus exporters keep working. Recording
// from worker threads never synchronizes (sharded relaxed counters).

#ifndef OCT_ROUTER_ROUTER_STATS_H_
#define OCT_ROUTER_ROUTER_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace oct {
namespace router {

/// Plain-value copy of every router metric, safe to pass around.
struct RouterStatsSnapshot {
  /// Requests admitted into the queue (Submit returned OK).
  uint64_t requests = 0;
  /// Requests answered with at least one ranked category.
  uint64_t routed = 0;
  /// Requests answered OK but with an empty ranking (no category reached
  /// the Jaccard floor, or the query's result set was empty).
  uint64_t unrouted = 0;
  /// Requests rejected at admission because the queue was full.
  uint64_t shed_queue_full = 0;
  /// Requests dropped because their deadline expired before scoring began
  /// (at admission or at dequeue).
  uint64_t shed_deadline = 0;
  /// Requests whose descent was cut short by deadline/budget but still
  /// returned a valid best-so-far ranking.
  uint64_t degraded = 0;
  /// Requests failed by injected or real errors (resolve/score paths).
  uint64_t errors = 0;
  /// Worker batches drained from the queue.
  uint64_t batches = 0;
  /// Head-query result-cache hits / misses (batched path only; the cache
  /// is per tree version and cleared on every publish).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Requests in a batch answered by an identical leader request's result
  /// (cross-request dedup) instead of scoring again.
  uint64_t deduped = 0;
  /// Instantaneous queue depth.
  int64_t queue_depth = 0;
  /// Entries currently in the result cache.
  int64_t cache_size = 0;
  /// TreeSnapshot version of the most recently pinned RouteIndex.
  int64_t index_version = 0;

  uint64_t TotalShed() const { return shed_queue_full + shed_deadline; }
  double ShedRate() const {
    const uint64_t offered = requests + shed_queue_full;
    return offered == 0
               ? 0.0
               : static_cast<double>(TotalShed()) /
                     static_cast<double>(offered);
  }

  /// One-line "k=v k=v ..." rendering for logs.
  std::string ToString() const;
};

class RouterStats {
 public:
  RouterStats();
  RouterStats(const RouterStats&) = delete;
  RouterStats& operator=(const RouterStats&) = delete;

  void RecordAdmitted() { requests_->Increment(); }
  void RecordRouted() { routed_->Increment(); }
  void RecordUnrouted() { unrouted_->Increment(); }
  void RecordShedQueueFull() { shed_queue_full_->Increment(); }
  void RecordShedDeadline() { shed_deadline_->Increment(); }
  void RecordDegraded() { degraded_->Increment(); }
  void RecordError() { errors_->Increment(); }
  void RecordBatch(size_t size) {
    batches_->Increment();
    batch_size_->Record(static_cast<double>(size));
  }
  void RecordCacheHit() { cache_hits_->Increment(); }
  void RecordCacheMiss() { cache_misses_->Increment(); }
  void RecordDeduped() { deduped_->Increment(); }
  void SetCacheSize(int64_t size) { cache_size_->Set(size); }
  void SetQueueDepth(int64_t depth) { queue_depth_->Set(depth); }
  void SetIndexVersion(int64_t version) { index_version_->Set(version); }
  void RecordQueueWait(double seconds) { queue_us_->Record(seconds * 1e6); }
  /// `trace_id` (0 = none) exemplar-links the latency bucket this request
  /// lands in to its trace on /tracez.
  void RecordRoute(double seconds, uint64_t trace_id = 0) {
    route_us_->RecordWithExemplar(seconds * 1e6, trace_id);
  }

  RouterStatsSnapshot Snapshot() const;

  /// End-to-end route latency histogram (microseconds) for percentile
  /// reporting without re-aggregating.
  const obs::Histogram& route_histogram() const { return *route_us_; }

  /// The registry backing these stats; usable with obs::MetricsToJson.
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* requests_;
  obs::Counter* routed_;
  obs::Counter* unrouted_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* degraded_;
  obs::Counter* errors_;
  obs::Counter* batches_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* deduped_;
  obs::Gauge* queue_depth_;
  obs::Gauge* cache_size_;
  obs::Gauge* index_version_;
  obs::Histogram* route_us_;
  obs::Histogram* queue_us_;
  obs::Histogram* batch_size_;
};

}  // namespace router
}  // namespace oct

#endif  // OCT_ROUTER_ROUTER_STATS_H_
