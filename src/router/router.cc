#include "router/router.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "fault/failpoint.h"
#include "obs/slo.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace router {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// A result is shareable (cacheable / dedup-fan-out-able) when it is a
/// clean, complete answer — errors, sheds, and best-so-far rankings are
/// request-specific outcomes and recompute.
bool Shareable(const RouteResult& result) {
  return result.status.ok() && !result.degraded && !result.shed;
}

/// Feeds the installed SLO engine (no-op when none): route latency and
/// non-shed availability, the two objectives the serving stack declares.
void RecordSlo(const RouteResult& result) {
  obs::SloEngine* slo = obs::SloEngine::Global();
  if (slo == nullptr) return;
  static const std::string kLatency = "router.latency";
  static const std::string kAvailability = "router.availability";
  slo->RecordLatency(kLatency, result.total_seconds * 1e6);
  const bool errored = !result.status.ok() && !result.shed && !result.degraded;
  slo->Record(kAvailability, !result.shed && !errored);
}

}  // namespace

Router::Router(const serve::TreeStore* store, const data::SearchEngine* engine,
               RouterOptions options)
    : store_(store), engine_(engine), options_(std::move(options)) {
  OCT_CHECK(store_ != nullptr);
  OCT_CHECK(engine_ != nullptr);
  OCT_CHECK(options_.num_workers > 0);
  OCT_CHECK(options_.max_queue > 0);
  OCT_CHECK(options_.max_batch > 0);
}

Router::~Router() { Stop(); }

void Router::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Router::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  stopping_ = false;
}

bool Router::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

size_t Router::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::shared_ptr<const RouteIndex> Router::CurrentIndex() const {
  std::shared_ptr<const serve::TreeSnapshot> snapshot = store_->Current();
  if (snapshot == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (index_cache_ != nullptr &&
        index_cache_->version() == snapshot->version()) {
      return index_cache_;
    }
  }
  // Build outside the lock: concurrent workers may both build on a version
  // flip (rare — once per publish), but neither blocks routing meanwhile.
  std::shared_ptr<const RouteIndex> built =
      RouteIndex::Build(std::move(snapshot), options_.index_options);
  std::lock_guard<std::mutex> lock(index_mu_);
  if (index_cache_ == nullptr || built->version() >= index_cache_->version()) {
    index_cache_ = built;
    stats_.SetIndexVersion(static_cast<int64_t>(built->version()));
  }
  return index_cache_;
}

uint64_t Router::WorkKeyFor(const RouteRequest& request) const {
  const size_t top_k = request.top_k != 0 ? request.top_k : options_.top_k;
  const double min_jaccard =
      request.min_jaccard >= 0.0 ? request.min_jaccard : options_.min_jaccard;
  uint64_t jaccard_bits = 0;
  static_assert(sizeof(jaccard_bits) == sizeof(min_jaccard), "");
  std::memcpy(&jaccard_bits, &min_jaccard, sizeof(jaccard_bits));
  uint64_t h = 0xcbf29ce484222325ull;
  h = MixHash(h, request.query.Key());
  h = MixHash(h, top_k);
  h = MixHash(h, jaccard_bits);
  h = MixHash(h, request.max_score_nodes);
  return h;
}

bool Router::CacheLookup(uint64_t key, serve::TreeVersion version,
                         RouteResult* result) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (version != result_cache_version_) {
    // First request against a freshly published tree: the old version's
    // rankings are invalid, drop them all.
    result_cache_.clear();
    result_cache_map_.clear();
    result_cache_version_ = version;
    stats_.SetCacheSize(0);
    return false;
  }
  auto it = result_cache_map_.find(key);
  if (it == result_cache_map_.end()) return false;
  result_cache_.splice(result_cache_.begin(), result_cache_, it->second);
  *result = result_cache_.front().result;
  return true;
}

void Router::CacheInsert(uint64_t key, serve::TreeVersion version,
                         const RouteResult& result) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (version != result_cache_version_) {
    result_cache_.clear();
    result_cache_map_.clear();
    result_cache_version_ = version;
  }
  auto it = result_cache_map_.find(key);
  if (it != result_cache_map_.end()) {
    result_cache_.splice(result_cache_.begin(), result_cache_, it->second);
    result_cache_.front().result = result;
  } else {
    result_cache_.push_front({key, result});
    result_cache_map_[key] = result_cache_.begin();
    while (result_cache_.size() > options_.cache_capacity) {
      result_cache_map_.erase(result_cache_.back().key);
      result_cache_.pop_back();
    }
  }
  stats_.SetCacheSize(static_cast<int64_t>(result_cache_.size()));
}

RouteResult Router::ProcessCached(const RouteIndex& index,
                                  const RouteRequest& request,
                                  const fault::CancelToken& cancel) const {
  if (options_.cache_capacity == 0) {
    return ProcessOne(index, request, cancel);
  }
  const uint64_t key = WorkKeyFor(request);
  RouteResult cached;
  if (CacheLookup(key, index.version(), &cached)) {
    stats_.RecordCacheHit();
    return cached;
  }
  stats_.RecordCacheMiss();
  RouteResult result = ProcessOne(index, request, cancel);
  if (Shareable(result)) CacheInsert(key, index.version(), result);
  return result;
}

Status Router::Submit(RouteRequest request,
                      std::function<void(RouteResult)> done) {
  OCT_CHECK(done != nullptr);
  Status injected = OCT_FAILPOINT("router.enqueue");
  if (!injected.ok()) {
    stats_.RecordShedQueueFull();
    return Status::ResourceExhausted("router: admission rejected (injected): " +
                                     injected.message());
  }

  Pending pending;
  const double deadline = request.deadline_seconds > 0.0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  if (deadline > 0.0) {
    pending.cancel = fault::CancelToken::WithDeadline(deadline);
  }
  if (pending.cancel.Cancelled()) {
    stats_.RecordShedDeadline();
    return Status::DeadlineExceeded("router: deadline expired at admission");
  }
  pending.request = std::move(request);
  pending.done = std::move(done);

  // Carry the request's trace across the queue. A caller that installed a
  // context (the HTTP ingress) stays the trace owner; otherwise the router
  // mints one at admission so direct Submit()/Route() callers (benches,
  // tests) still get cross-thread span trees and tail sampling.
  pending.trace = obs::CurrentTraceContext();
  if (!pending.trace.valid()) {
    const uint64_t deadline_ns =
        deadline > 0.0
            ? obs::TraceNowNanos() + static_cast<uint64_t>(deadline * 1e9)
            : 0;
    pending.trace = obs::StartRequestTrace(deadline_ns);
    pending.own_trace = true;
  }

  Status rejected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      rejected = Status::FailedPrecondition("router: not running");
    } else if (queue_.size() >= options_.max_queue) {
      stats_.RecordShedQueueFull();
      rejected = Status::ResourceExhausted("router: queue full");
    } else {
      pending.enqueue_elapsed = uptime_.ElapsedSeconds();
      queue_.push_back(std::move(pending));
      stats_.SetQueueDepth(static_cast<int64_t>(queue_.size()));
    }
  }
  if (!rejected.ok()) {
    if (pending.own_trace) {
      // The trace never crosses the queue; close its pending entry with
      // the shed verdict so /slowz records the rejection.
      obs::TraceFinish fin;
      fin.shed = true;
      fin.query = pending.request.query.Text(engine_->catalog());
      obs::FinishRequestTrace(pending.trace, fin);
    }
    return rejected;
  }
  stats_.RecordAdmitted();
  cv_.notify_one();
  return Status::OK();
}

RouteResult Router::Route(RouteRequest request) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    RouteResult result;
    bool ready = false;
  };
  auto waiter = std::make_shared<Waiter>();
  Status admitted = Submit(std::move(request), [waiter](RouteResult r) {
    std::lock_guard<std::mutex> lock(waiter->mu);
    waiter->result = std::move(r);
    waiter->ready = true;
    waiter->cv.notify_one();
  });
  if (!admitted.ok()) {
    RouteResult shed;
    shed.status = std::move(admitted);
    shed.shed = true;
    return shed;
  }
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->ready; });
  return std::move(waiter->result);
}

RouteResult Router::RouteSerial(const RouteRequest& request) const {
  Timer timer;
  fault::CancelToken cancel;
  const double deadline = request.deadline_seconds > 0.0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  if (deadline > 0.0) cancel = fault::CancelToken::WithDeadline(deadline);

  RouteResult result;
  std::shared_ptr<const RouteIndex> index = CurrentIndex();
  if (index == nullptr) {
    result.status = Status::FailedPrecondition("router: no published tree");
  } else {
    result = ProcessOne(*index, request, cancel);
  }
  result.total_seconds = timer.ElapsedSeconds();
  FinishResult(result);
  // The serial oracle stays out of the SLO ledger (it is a correctness
  // probe, not traffic) but still exemplar-links when a context is live.
  stats_.RecordRoute(result.total_seconds, result.trace_id);
  return result;
}

void Router::WorkerLoop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      const size_t take = std::min(queue_.size(), options_.max_batch);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.SetQueueDepth(static_cast<int64_t>(queue_.size()));
    }
    const double dequeue_elapsed = uptime_.ElapsedSeconds();
    stats_.RecordBatch(batch.size());

    // router.batch: delay stalls the worker here with the batch already
    // claimed (the queue fills behind it — the shed test), error fails the
    // whole batch (answers still delivered, as errors).
    Status batch_status = OCT_FAILPOINT("router.batch");

    // Pin ONE index — one snapshot — for the whole batch. Every answer in
    // this batch is computed against the same tree version even if the
    // store publishes mid-batch.
    std::shared_ptr<const RouteIndex> index =
        batch_status.ok() ? CurrentIndex() : nullptr;

    // Cross-request dedup: requests with the same work key (query identity
    // + every answer-shaping knob) resolve and score once per batch — the
    // first one computes (possibly through the result cache) and clean
    // answers fan out to the rest. Deterministic: ProcessOne is a pure
    // function of (index version, request), so the fan-out copy is exactly
    // what each follower would have computed.
    std::unordered_map<uint64_t, size_t> leader_of;
    std::vector<RouteResult> computed(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& pending = batch[i];
      Timer timer;
      // Re-install the request's trace context on this worker thread:
      // spans below carry the request's trace id and parent under the
      // submitter's span, reassembling the cross-thread tree on /tracez.
      obs::TraceContextScope trace_scope(pending.trace);
      RouteResult result;
      result.trace_id = pending.trace.trace_id;
      result.queue_seconds = dequeue_elapsed - pending.enqueue_elapsed;
      stats_.RecordQueueWait(result.queue_seconds);
      if (!batch_status.ok()) {
        result.status = batch_status;
      } else if (pending.cancel.Cancelled()) {
        // Budget gone before scoring began: shed, don't compute.
        result.status =
            Status::DeadlineExceeded("router: deadline expired in queue");
        result.shed = true;
      } else if (index == nullptr) {
        result.status = Status::FailedPrecondition("router: no published tree");
      } else {
        const uint64_t key = WorkKeyFor(pending.request);
        const auto leader = leader_of.find(key);
        if (leader != leader_of.end() && Shareable(computed[leader->second])) {
          const uint64_t link_start = obs::TraceNowNanos();
          result = computed[leader->second];
          result.trace_id = pending.trace.trace_id;
          result.deduped = true;
          stats_.RecordDeduped();
          // The follower's trace did no scoring of its own; link a span
          // under the *leader's* scoring span so the follower's tree shows
          // where its answer came from (a cross-trace edge).
          obs::RecordLinkedSpan("router/dedup", link_start,
                                obs::TraceNowNanos(), result.route_span_id);
        } else {
          result = ProcessCached(*index, pending.request, pending.cancel);
          result.trace_id = pending.trace.trace_id;
          leader_of[key] = i;
        }
        computed[i] = result;
        result.queue_seconds = dequeue_elapsed - pending.enqueue_elapsed;
      }
      result.total_seconds =
          result.queue_seconds + timer.ElapsedSeconds();
      FinishResult(result);
      stats_.RecordRoute(result.total_seconds, result.trace_id);
      RecordSlo(result);
      if (pending.own_trace) {
        obs::TraceFinish fin;
        fin.total_us = result.total_seconds * 1e6;
        fin.queue_us = result.queue_seconds * 1e6;
        fin.resolve_us = result.resolve_seconds * 1e6;
        fin.score_us = result.score_seconds * 1e6;
        fin.shed = result.shed;
        fin.degraded = result.degraded;
        fin.errored =
            !result.status.ok() && !result.shed && !result.degraded;
        fin.deduped = result.deduped;
        fin.version = result.version;
        fin.query = pending.request.query.Text(engine_->catalog());
        obs::FinishRequestTrace(pending.trace, fin);
      }
      pending.done(std::move(result));
    }
  }
}

RouteResult Router::ProcessOne(const RouteIndex& index,
                               const RouteRequest& request,
                               const fault::CancelToken& cancel) const {
  OCT_NAMED_SPAN(route_span, "router/route");
  RouteResult result;
  result.version = index.version();
  result.trace_id = obs::CurrentTraceContext().trace_id;
  result.route_span_id = route_span.span_id();

  Status injected = OCT_FAILPOINT("router.resolve");
  if (!injected.ok()) {
    result.status = std::move(injected);
    return result;
  }
  Timer resolve_timer;
  Result<ItemSet> resolved = [&] {
    OCT_SPAN("router/resolve");
    return engine_->TryResultSet(request.query, options_.relevance_threshold);
  }();
  result.resolve_seconds = resolve_timer.ElapsedSeconds();
  if (!resolved.ok()) {
    result.status = resolved.status();
    return result;
  }
  result.result_set_size = resolved->size();

  injected = OCT_FAILPOINT("router.score");
  if (!injected.ok()) {
    result.status = std::move(injected);
    return result;
  }
  const size_t top_k = request.top_k != 0 ? request.top_k : options_.top_k;
  const double min_jaccard =
      request.min_jaccard >= 0.0 ? request.min_jaccard : options_.min_jaccard;
  Timer score_timer;
  {
    OCT_SPAN("router/score");
    std::vector<NodeScore> scores;
    result.score_stats =
        index.ScoreTopK(*resolved, top_k, min_jaccard, &cancel, &scores,
                        request.max_score_nodes);
    result.degraded = result.score_stats.degraded;
    result.status = result.degraded
                        ? Status::DeadlineExceeded(
                              "router: budget hit mid-descent; best-so-far")
                        : Status::OK();

    const CategoryTree& tree = index.snapshot().tree();
    result.ranked.reserve(scores.size());
    for (const NodeScore& score : scores) {
      RoutedCategory category;
      category.node = score.node;
      category.jaccard = score.jaccard;
      category.containment = score.containment;
      category.overlap = score.overlap;
      category.depth = score.depth;
      for (NodeId id : index.snapshot().PathTo(score.node)) {
        category.path.push_back(tree.node(id).label);
      }
      result.ranked.push_back(std::move(category));
    }
  }
  result.score_seconds = score_timer.ElapsedSeconds();
  return result;
}

void Router::FinishResult(const RouteResult& result) const {
  if (result.shed) {
    stats_.RecordShedDeadline();
    return;
  }
  if (result.degraded) stats_.RecordDegraded();
  if (result.status.ok() || result.degraded) {
    if (result.ranked.empty()) {
      stats_.RecordUnrouted();
    } else {
      stats_.RecordRouted();
    }
    return;
  }
  stats_.RecordError();
}

}  // namespace router
}  // namespace oct
