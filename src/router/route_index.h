// RouteIndex: the per-snapshot scoring structure of the query router. Built
// once when a TreeSnapshot is installed, it turns "which categories does
// this result set belong to?" into a pruned root-to-leaf descent:
//
//   - Every tree node's *full* item set (direct items plus descendants)
//     becomes one candidate set of an OctInput, and a kernel::ItemSetIndex
//     over those sets supplies density-gated bitmaps so a query probe costs
//     O(|q|) per visited node instead of a sorted merge.
//   - Scoring descends from the root. Node item sets are nested (a child's
//     set is a subset of its parent's), so |q ∩ child| <= |q ∩ node|: once a
//     node's overlap falls below the prefix-filter bound
//     kernel::MinOverlapForJaccard(|q|, t), no descendant can reach Jaccard
//     >= t and the whole subtree is pruned without being touched.
//
// The index pins the snapshot it was built from (shared_ptr), so results
// computed against it stay valid even while TreeStore publishes newer
// versions — the router pins one RouteIndex per *batch*, which is what
// makes a batch's answers mutually consistent under concurrent publishes.

#ifndef OCT_ROUTER_ROUTE_INDEX_H_
#define OCT_ROUTER_ROUTE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/input.h"
#include "core/item_set.h"
#include "fault/cancel.h"
#include "kernel/item_set_index.h"
#include "serve/tree_snapshot.h"

namespace oct {
namespace router {

/// One scored candidate category.
struct NodeScore {
  NodeId node = kInvalidNode;
  /// |q ∩ C| over the node's full item set.
  uint32_t overlap = 0;
  /// |q ∩ C| / |q ∪ C| — the primary ranking key.
  double jaccard = 0.0;
  /// |q ∩ C| / |q| — how much of the query the category covers.
  double containment = 0.0;
  /// Depth of the node (root = 0); deeper wins ties (more specific).
  uint32_t depth = 0;
};

/// Work accounting of one ScoreTopK call.
struct ScoreStats {
  /// Nodes whose overlap was actually computed.
  size_t nodes_visited = 0;
  /// Nodes skipped because an ancestor fell below the prefix-filter bound.
  size_t nodes_pruned = 0;
  /// True when the cancel token (or max_nodes budget) expired mid-descent;
  /// the returned ranking is the valid best-so-far subset.
  bool degraded = false;
};

class RouteIndex {
 public:
  /// Builds the scoring index for `snapshot` (must be non-null). The
  /// snapshot is pinned for the index's lifetime.
  static std::shared_ptr<const RouteIndex> Build(
      std::shared_ptr<const serve::TreeSnapshot> snapshot,
      const kernel::ItemSetIndexOptions& options = {});

  RouteIndex(const RouteIndex&) = delete;
  RouteIndex& operator=(const RouteIndex&) = delete;

  const serve::TreeSnapshot& snapshot() const { return *snapshot_; }
  std::shared_ptr<const serve::TreeSnapshot> snapshot_ptr() const {
    return snapshot_;
  }
  serve::TreeVersion version() const { return snapshot_->version(); }

  /// Seconds spent building (observability: install cost).
  double build_seconds() const { return build_seconds_; }

  /// Number of candidate categories (== alive tree nodes, root included).
  size_t num_nodes() const { return node_input_.num_sets(); }

  /// Full item-set size of a node.
  size_t node_size(NodeId node) const {
    return node_input_.set(node).items.size();
  }

  /// Scores every category whose Jaccard against `query` can reach
  /// `min_jaccard`, descending root→leaf with subtree pruning, and returns
  /// the `top_k` best in `out` — sorted by Jaccard descending, then deeper
  /// node first, then NodeId ascending (a deterministic total order; the
  /// serial oracle and the batched path produce identical rankings). The
  /// root itself is never a result (routing to "everything" is not an
  /// answer), but it participates in pruning.
  ///
  /// `cancel` (nullable) is polled every few nodes; on expiry the descent
  /// stops and the best-so-far ranking is returned with stats.degraded set.
  /// `max_nodes` (0 = unlimited) bounds visited nodes the same way — the
  /// deterministic anytime knob used by tests.
  ScoreStats ScoreTopK(const ItemSet& query, size_t top_k, double min_jaccard,
                       const fault::CancelToken* cancel,
                       std::vector<NodeScore>* out,
                       size_t max_nodes = 0) const;

  /// |q ∩ node| routed to the cheapest representation (bitmap probe when
  /// the node's set was materialized, sorted merge otherwise).
  size_t Overlap(const ItemSet& query, NodeId node) const;

 private:
  RouteIndex() = default;

  std::shared_ptr<const serve::TreeSnapshot> snapshot_;
  /// One candidate set per tree node: the node's full item set, labeled
  /// with the node's label. SetId i == NodeId i (snapshot trees are
  /// compacted, so node ids are dense).
  OctInput node_input_;
  kernel::ItemSetIndex index_;
  /// Nodes in each node's subtree (itself included) — pruning accounting.
  std::vector<uint32_t> subtree_nodes_;
  double build_seconds_ = 0.0;
};

}  // namespace router
}  // namespace oct

#endif  // OCT_ROUTER_ROUTE_INDEX_H_
