#include "router/query_parse.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace oct {
namespace router {

namespace {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '+' || c == ',') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool ParseIndex(const std::string& s, uint16_t* out) {
  if (s.empty()) return false;
  unsigned long value = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 0xffff) return false;
  }
  *out = static_cast<uint16_t>(value);
  return true;
}

Status UnknownToken(const std::string& token) {
  return Status::InvalidArgument("unrecognized query token: \"" + token +
                                 "\"");
}

/// Resolves one token into an (attr, value) conjunct.
Status ResolveToken(const std::string& token, const data::Catalog& catalog,
                    std::pair<uint16_t, uint16_t>* out) {
  const data::DomainSchema& schema = catalog.schema();

  const size_t colon = token.find(':');
  if (colon != std::string::npos) {
    uint16_t attr = 0;
    uint16_t value = 0;
    if (!ParseIndex(token.substr(0, colon), &attr) ||
        !ParseIndex(token.substr(colon + 1), &value) ||
        attr >= schema.attributes.size() ||
        value >= schema.attributes[attr].values.size()) {
      return UnknownToken(token);
    }
    *out = {attr, value};
    return Status::OK();
  }

  const size_t eq = token.find('=');
  if (eq != std::string::npos) {
    const std::string attr_name = token.substr(0, eq);
    const std::string value_name = token.substr(eq + 1);
    for (size_t a = 0; a < schema.attributes.size(); ++a) {
      if (schema.attributes[a].name != attr_name) continue;
      const auto& values = schema.attributes[a].values;
      for (size_t v = 0; v < values.size(); ++v) {
        if (values[v] == value_name) {
          *out = {static_cast<uint16_t>(a), static_cast<uint16_t>(v)};
          return Status::OK();
        }
      }
      return UnknownToken(token);
    }
    return UnknownToken(token);
  }

  // Bare word: first attribute (schema order) carrying the value wins —
  // deterministic, and vocabularies are disjoint in practice.
  for (size_t a = 0; a < schema.attributes.size(); ++a) {
    const auto& values = schema.attributes[a].values;
    for (size_t v = 0; v < values.size(); ++v) {
      if (values[v] == token) {
        *out = {static_cast<uint16_t>(a), static_cast<uint16_t>(v)};
        return Status::OK();
      }
    }
  }
  return UnknownToken(token);
}

}  // namespace

Result<data::Query> ParseQuery(const std::string& text,
                               const data::Catalog& catalog) {
  const std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty query");
  }
  data::Query query;
  for (const std::string& token : tokens) {
    std::pair<uint16_t, uint16_t> conjunct;
    OCT_RETURN_NOT_OK(ResolveToken(token, catalog, &conjunct));
    query.conjuncts.push_back(conjunct);
  }
  return query;
}

}  // namespace router
}  // namespace oct
