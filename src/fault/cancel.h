// Cooperative deadlines and cancellation for long builds. A CancelToken is
// a cheap, copyable handle to shared cancellation state; the build layers
// (CTCR, CCT, the MIS solver suite) poll it at phase boundaries and inside
// their search loops, degrading to anytime behaviour: the caller always
// gets a valid tree/solution, just built from the best-so-far state, with
// Status kDeadlineExceeded reporting that the budget was hit.
//
//   fault::CancelToken budget = fault::CancelToken::WithDeadline(2.0);
//   CtcrOptions opts; opts.cancel = &budget;
//   CtcrResult r = ctcr::BuildCategoryTree(input, sim, opts);
//   // r.tree valid; r.status.code() == kDeadlineExceeded if 2s elapsed.

#ifndef OCT_FAULT_CANCEL_H_
#define OCT_FAULT_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.h"

namespace oct {
namespace fault {

class CancelToken {
 public:
  /// A token that never expires (until Cancel() is called).
  CancelToken() : state_(std::make_shared<State>()) {}

  /// A token that expires `seconds` of wall-clock from now.
  static CancelToken WithDeadline(double seconds) {
    CancelToken token;
    token.state_->has_deadline = true;
    token.state_->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return token;
  }

  /// Requests cancellation. Thread-safe; copies of this token observe it.
  void Cancel() const {
    state_->cancelled.store(true, std::memory_order_release);
  }

  /// True once cancelled or past the deadline. Safe to call concurrently;
  /// cheap enough for loop-boundary polling (one atomic load, plus a clock
  /// read until the deadline fires).
  bool Cancelled() const {
    State& s = *state_;
    if (s.cancelled.load(std::memory_order_acquire)) return true;
    if (s.has_deadline && Clock::now() >= s.deadline) {
      // Latch so later checks skip the clock read. A racing store is
      // idempotent.
      s.cancelled.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// OK while running; kDeadlineExceeded once cancelled/expired.
  Status status() const {
    return Cancelled() ? Status::DeadlineExceeded("build budget exhausted")
                       : Status::OK();
  }

  /// Seconds until expiry; +infinity when no deadline was set, 0 when past.
  double RemainingSeconds() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };
  std::shared_ptr<State> state_;
};

/// Null-safe helper for the options-struct convention
/// (`const CancelToken* cancel = nullptr`).
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->Cancelled();
}

}  // namespace fault
}  // namespace oct

#endif  // OCT_FAULT_CANCEL_H_
