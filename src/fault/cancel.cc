#include "fault/cancel.h"

#include <limits>

namespace oct {
namespace fault {

double CancelToken::RemainingSeconds() const {
  const State& s = *state_;
  if (s.cancelled.load(std::memory_order_acquire)) return 0.0;
  if (!s.has_deadline) return std::numeric_limits<double>::infinity();
  const double remaining =
      std::chrono::duration<double>(s.deadline - Clock::now()).count();
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace fault
}  // namespace oct
