#include "fault/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace oct {
namespace fault {

namespace {

/// SplitMix64 step: the registry's probability stream. Not Rng to keep the
/// registry header free of util/rng.h (failpoint.h is included from hot
/// paths).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Result<double> ParseProbability(const std::string& s) {
  char* end = nullptr;
  const double p = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("bad probability: " + s);
  }
  return p;
}

Result<double> ParseMillis(const std::string& s) {
  std::string digits = s;
  if (digits.size() > 2 && digits.substr(digits.size() - 2) == "ms") {
    digits = digits.substr(0, digits.size() - 2);
  }
  char* end = nullptr;
  const double ms = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || ms < 0.0) {
    return Status::InvalidArgument("bad delay: " + s);
  }
  return ms;
}

/// Parses a trailing "xN" trigger cap; returns -1 when `s` is not one.
int64_t ParseTriggerCap(const std::string& s) {
  if (s.size() < 2 || s[0] != 'x') return -1;
  char* end = nullptr;
  const long long n = std::strtoll(s.c_str() + 1, &end, 10);
  if (end == s.c_str() + 1 || *end != '\0' || n <= 0) return -1;
  return n;
}

}  // namespace

const char* FailActionName(FailAction action) {
  switch (action) {
    case FailAction::kOff:
      return "off";
    case FailAction::kError:
      return "error";
    case FailAction::kDelay:
      return "delay";
    case FailAction::kCrash:
      return "crash";
  }
  return "?";
}

void FailPoint::Arm(FailSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  armed_.store(spec.action != FailAction::kOff, std::memory_order_release);
}

void FailPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = FailSpec{};
  armed_.store(false, std::memory_order_release);
}

Status FailPoint::EvaluateArmed() {
  // The probability draw happens outside mu_ (NextUnit locks the registry;
  // DisarmAll locks the registry and then this point — drawing under mu_
  // would invert that order). A racing Disarm between the draw and the
  // locked section below is resolved by re-checking the armed spec.
  const double draw = FailPointRegistry::Default()->NextUnit();
  FailSpec spec;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spec_.action == FailAction::kOff) return Status::OK();
    if (hits_counter_ == nullptr) {
      obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
      hits_counter_ = reg->GetCounter("fault." + name_ + ".hits");
      triggered_counter_ = reg->GetCounter("fault." + name_ + ".triggered");
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_counter_->Increment();
    spec = spec_;  // Capture the action before any cap-triggered disarm.
    fire = spec_.probability >= 1.0 || draw < spec_.probability;
    if (fire) {
      triggered_.fetch_add(1, std::memory_order_relaxed);
      triggered_counter_->Increment();
      if (spec_.max_triggers > 0 && --spec_.max_triggers == 0) {
        spec_.action = FailAction::kOff;
        armed_.store(false, std::memory_order_release);
      }
    }
  }
  if (!fire) return Status::OK();
  switch (spec.action) {
    case FailAction::kOff:
      return Status::OK();  // Unreachable: captured while armed.
    case FailAction::kError:
      return Status(
          spec.error_code,
          "failpoint " + name_ + " injected " + StatusCodeName(spec.error_code));
    case FailAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.delay_ms));
      return Status::OK();
    case FailAction::kCrash:
      OCT_LOG_ERROR << "failpoint " << name_ << " crashing process";
      std::abort();
  }
  return Status::OK();
}

FailPoint* FailPointRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::unique_ptr<FailPoint>(new FailPoint(name)))
             .first;
  }
  return it->second.get();
}

Status FailPointRegistry::Arm(const std::string& name,
                              const std::string& action) {
  auto spec = ParseAction(action);
  if (!spec.ok()) return spec.status();
  Get(name)->Arm(*spec);
  return Status::OK();
}

Status FailPointRegistry::ArmFromSpec(const std::string& spec) {
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint entry: " + entry);
    }
    OCT_RETURN_NOT_OK(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void FailPointRegistry::DisarmAll() {
  // Collect under the registry lock, disarm outside it: Disarm takes the
  // point's own mutex, and EvaluateArmed acquires registry-then-point in
  // the opposite order via NextUnit.
  std::vector<FailPoint*> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.reserve(points_.size());
    for (auto& [name, fp] : points_) points.push_back(fp.get());
  }
  for (FailPoint* fp : points) fp->Disarm();
}

void FailPointRegistry::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed ^ 0x6f63745f666c74ULL;
}

std::vector<std::string> FailPointRegistry::ArmedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, fp] : points_) {
    if (fp->armed()) out.push_back(name);
  }
  return out;
}

double FailPointRegistry::NextUnit() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(SplitMix64(&rng_state_) >> 11) * 0x1.0p-53;
}

FailPointRegistry* FailPointRegistry::Default() {
  static FailPointRegistry* instance = [] {
    auto* reg = new FailPointRegistry();  // Leaked: exit-handler safe.
    if (const char* seed = std::getenv("OCT_FAILPOINT_SEED")) {
      reg->Seed(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("OCT_FAILPOINTS")) {
      const Status st = reg->ArmFromSpec(spec);
      if (!st.ok()) {
        OCT_LOG_WARNING << "ignoring bad OCT_FAILPOINTS: " << st.ToString();
      }
    }
    return reg;
  }();
  return instance;
}

Result<FailSpec> FailPointRegistry::ParseAction(const std::string& action) {
  const std::vector<std::string> parts = Split(action, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("empty failpoint action");
  }
  FailSpec spec;
  size_t next = 1;
  if (parts[0] == "off") {
    spec.action = FailAction::kOff;
  } else if (parts[0] == "error") {
    spec.action = FailAction::kError;
  } else if (parts[0] == "delay") {
    spec.action = FailAction::kDelay;
    if (parts.size() < 2) {
      return Status::InvalidArgument("delay needs a duration: " + action);
    }
    auto ms = ParseMillis(parts[1]);
    if (!ms.ok()) return ms.status();
    spec.delay_ms = *ms;
    next = 2;
  } else if (parts[0] == "crash") {
    spec.action = FailAction::kCrash;
    spec.max_triggers = 1;  // One-shot unless an explicit xN follows.
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + parts[0]);
  }
  // Optional probability, then optional trailing xN trigger cap.
  if (next < parts.size()) {
    const int64_t cap = ParseTriggerCap(parts[next]);
    if (cap > 0) {
      spec.max_triggers = cap;
      ++next;
    } else {
      auto p = ParseProbability(parts[next]);
      if (!p.ok()) return p.status();
      spec.probability = *p;
      ++next;
    }
  }
  if (next < parts.size()) {
    const int64_t cap = ParseTriggerCap(parts[next]);
    if (cap <= 0) {
      return Status::InvalidArgument("bad failpoint suffix: " + parts[next]);
    }
    spec.max_triggers = cap;
    ++next;
  }
  if (next != parts.size()) {
    return Status::InvalidArgument("trailing failpoint segments: " + action);
  }
  return spec;
}

}  // namespace fault
}  // namespace oct
