// Failpoint injection, in the spirit of RocksDB/TiKV fail-point testing:
// named sites compiled into the binary (`OCT_FAILPOINT("serve.publish")`)
// that normally cost one relaxed atomic load, but can be armed — from tests
// or from the environment — to return errors, inject latency, or crash the
// process, so failure becomes a first-class, testable input rather than an
// accident.
//
//   OCT_FAILPOINTS=serve.publish=error:0.3,mis.solve=delay:50ms ./server
//
// Spec grammar (comma-separated `name=action` entries):
//   error[:p]        return Status::Internal with probability p (default 1)
//   delay:<ms>[:p]   sleep <ms> milliseconds (suffix "ms" optional)
//   crash[:p]        abort the process — one-shot (disarms after firing)
//   off              disarm
// Any action may carry a final `xN` segment capping total triggers, e.g.
// `error:1:x2` fires twice then disarms ("one-shot" = x1, the crash
// default). Probabilistic draws use a process-wide seeded RNG
// (OCT_FAILPOINT_SEED) so chaos schedules replay deterministically.
//
// Armed evaluations are counted in the default obs::MetricsRegistry as
// `fault.<name>.hits` (site reached while armed) and `fault.<name>.triggered`
// (action actually fired).
//
// Sites compile out entirely with -DOCT_FAILPOINTS_ENABLED=0 (CMake option
// OCT_FAILPOINTS=OFF): the macro collapses to an OK status the optimizer
// deletes.

#ifndef OCT_FAULT_FAILPOINT_H_
#define OCT_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

#ifndef OCT_FAILPOINTS_ENABLED
#define OCT_FAILPOINTS_ENABLED 1
#endif

namespace oct {
namespace obs {
class Counter;
}  // namespace obs

namespace fault {

enum class FailAction {
  kOff = 0,
  /// Return a non-OK Status from the site.
  kError,
  /// Sleep before returning OK.
  kDelay,
  /// Abort the process (one-shot by default).
  kCrash,
};

const char* FailActionName(FailAction action);

/// Parsed arming descriptor for one failpoint.
struct FailSpec {
  FailAction action = FailAction::kOff;
  /// Chance in [0, 1] that a hit triggers the action.
  double probability = 1.0;
  /// Sleep duration for kDelay, milliseconds.
  double delay_ms = 0.0;
  /// Status code returned by kError sites.
  StatusCode error_code = StatusCode::kInternal;
  /// Remaining triggers before auto-disarm; < 0 means unlimited.
  int64_t max_triggers = -1;
};

/// One named injection site. Evaluate() is the fast path: a single
/// acquire load and branch while disarmed.
class FailPoint {
 public:
  Status Evaluate() {
    if (!armed_.load(std::memory_order_acquire)) return Status::OK();
    return EvaluateArmed();
  }

  void Arm(FailSpec spec);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Armed evaluations / actions fired since process start (also exported
  /// as fault.<name>.hits / fault.<name>.triggered).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t triggered() const {
    return triggered_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class FailPointRegistry;
  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  Status EvaluateArmed();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> triggered_{0};
  std::mutex mu_;  // Guards spec_ and the metric pointers below.
  FailSpec spec_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* triggered_counter_ = nullptr;
};

/// Owner and lookup table of failpoints. Get() registers on first use and
/// returns a pointer valid for the registry's lifetime. The process-wide
/// Default() registry arms itself from OCT_FAILPOINTS / OCT_FAILPOINT_SEED
/// on first access.
class FailPointRegistry {
 public:
  FailPointRegistry() = default;
  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

  FailPoint* Get(const std::string& name);

  /// Arms one failpoint from an action string ("error:0.3", "delay:50ms",
  /// "crash", "off").
  Status Arm(const std::string& name, const std::string& action);

  /// Arms a comma-separated schedule: "a=error:0.3,b=delay:50ms".
  Status ArmFromSpec(const std::string& spec);

  void DisarmAll();

  /// Reseeds the probability stream (chaos reproducibility).
  void Seed(uint64_t seed);

  /// Names of currently armed failpoints, sorted.
  std::vector<std::string> ArmedNames() const;

  /// Process-wide registry (leaked singleton; env-armed on first access).
  static FailPointRegistry* Default();

  /// Parses one action string. Exposed for tests.
  static Result<FailSpec> ParseAction(const std::string& action);

 private:
  friend class FailPoint;

  /// Deterministic uniform draw in [0, 1) from the registry stream.
  double NextUnit();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>> points_;
  uint64_t rng_state_ = 0x6f63745f666c74ULL;  // "oct_flt"
};

}  // namespace fault
}  // namespace oct

#if OCT_FAILPOINTS_ENABLED
/// Evaluates the named failpoint; yields Status (OK unless an error action
/// fires). `name` must be a string literal. Sites that can propagate do
/// OCT_RETURN_NOT_OK(OCT_FAILPOINT("x")); fire-and-forget sites cast to
/// void.
#define OCT_FAILPOINT(name)                                      \
  ([]() -> ::oct::Status {                                       \
    static ::oct::fault::FailPoint* _oct_fp =                    \
        ::oct::fault::FailPointRegistry::Default()->Get(name);   \
    return _oct_fp->Evaluate();                                  \
  }())
#else
#define OCT_FAILPOINT(name) (::oct::Status::OK())
#endif

#endif  // OCT_FAULT_FAILPOINT_H_
