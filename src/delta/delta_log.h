// DeltaLog: the ingestion point of oct::delta — an ordered, coalescing
// queue of query-log and catalog deltas.
//
// Producers append three kinds of ops:
//   - UpsertQuery: a new or changed candidate set (new query past the
//     frequency filter, or an existing query whose result set / weight
//     changed after a catalog update);
//   - RemoveQuery: a query dropped from the log (fell below the filter,
//     merged away, delisted intent);
//   - RemoveItem: catalog churn — an item delisted from the store, to be
//     scrubbed from every candidate set that contains it.
//
// Ops get monotone sequence numbers and coalesce per key while queued:
// a newer upsert/remove for the same query replaces the older pending op
// *at the tail* (so it cannot jump over an interleaved RemoveItem — later
// upserts overwrite the whole set, which makes tail placement equivalent
// to applying both in order), and duplicate RemoveItem ops deduplicate.
// DrainBatch hands the consumer a deterministic, seq-ordered batch.
//
// Thread-safe: traffic threads append while the maintainer drains.

#ifndef OCT_DELTA_DELTA_LOG_H_
#define OCT_DELTA_DELTA_LOG_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/input.h"
#include "core/item_set.h"

namespace oct {
namespace delta {

struct DeltaOp {
  enum class Kind { kUpsertQuery, kRemoveQuery, kRemoveItem };
  Kind kind = Kind::kUpsertQuery;
  /// Stable query identity (kUpsertQuery / kRemoveQuery). Producers that
  /// only have query text use DeltaLog::KeyForLabel.
  uint64_t key = 0;
  /// Payload of kUpsertQuery: items, weight, threshold override, label.
  CandidateSet set;
  /// Payload of kRemoveItem.
  ItemId item = 0;
  /// Assigned by the log; monotone across the log's lifetime.
  uint64_t seq = 0;
};

const char* DeltaOpKindName(DeltaOp::Kind kind);

/// One drained batch: ops in ascending seq order.
struct DeltaBatch {
  std::vector<DeltaOp> ops;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

class DeltaLog {
 public:
  DeltaLog() = default;
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Appends one op (coalescing against pending ops); returns its seq.
  uint64_t Append(DeltaOp op);

  /// Convenience producers.
  uint64_t UpsertQuery(uint64_t key, CandidateSet set);
  uint64_t RemoveQuery(uint64_t key);
  uint64_t RemoveItem(ItemId item);

  /// Moves up to `max_ops` pending ops (0 = all) out of the log, in seq
  /// order. Deterministic: the same append sequence yields the same
  /// batches regardless of timing.
  DeltaBatch DrainBatch(size_t max_ops = 0);

  size_t pending() const;
  /// Sequence number the next append will get (starts at 1).
  uint64_t next_seq() const;
  /// Pending ops superseded by a newer op for the same key/item.
  uint64_t coalesced() const;

  /// Stable 64-bit key for producers that identify queries by label
  /// (FNV-1a over the bytes).
  static uint64_t KeyForLabel(const std::string& label);

 private:
  mutable std::mutex mu_;
  std::list<DeltaOp> queue_;
  /// Pending upsert/remove per query key (iterator into queue_).
  std::unordered_map<uint64_t, std::list<DeltaOp>::iterator> by_key_;
  /// Pending RemoveItem per item (iterator into queue_).
  std::unordered_map<ItemId, std::list<DeltaOp>::iterator> by_item_;
  uint64_t next_seq_ = 1;
  uint64_t coalesced_ = 0;
};

}  // namespace delta
}  // namespace oct

#endif  // OCT_DELTA_DELTA_LOG_H_
