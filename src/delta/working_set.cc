#include "delta/working_set.h"

#include <algorithm>
#include <utility>

#include "kernel/union_find.h"
#include "util/logging.h"

namespace oct {
namespace delta {

namespace {

/// Content equality for "upsert with identical payload is a no-op".
bool SameContent(const CandidateSet& a, const CandidateSet& b) {
  return a.weight == b.weight && a.delta_override == b.delta_override &&
         a.label == b.label && a.items == b.items;
}

/// Splices `occurrence` into a label key so duplicate labels within one
/// input stay distinct (and deterministic by position).
uint64_t OccurrenceKey(uint64_t base, size_t occurrence) {
  if (occurrence == 0) return base;
  uint64_t mixed = base ^ (0x9e3779b97f4a7c15ull * (occurrence + 1));
  return mixed == 0 ? 1 : mixed;
}

}  // namespace

uint32_t WorkingSet::SlotOfKey(uint64_t key) const {
  auto it = slot_of_key_.find(key);
  return it == slot_of_key_.end() ? kInvalidSlot : it->second;
}

void WorkingSet::AddPostings(uint32_t slot) {
  for (ItemId item : slots_[slot].set.items) {
    auto& list = postings_[item];
    list.insert(std::lower_bound(list.begin(), list.end(), slot), slot);
  }
}

void WorkingSet::ErasePostings(uint32_t slot) {
  for (ItemId item : slots_[slot].set.items) {
    auto& list = postings_[item];
    auto it = std::lower_bound(list.begin(), list.end(), slot);
    if (it != list.end() && *it == slot) list.erase(it);
  }
}

bool WorkingSet::ApplyOne(const DeltaOp& op, std::vector<uint32_t>* touched) {
  switch (op.kind) {
    case DeltaOp::Kind::kUpsertQuery: {
      OCT_CHECK(op.key != 0) << "upsert with key 0";
      // Grow the universe to cover the new set before touching postings.
      size_t need = universe_size_;
      for (ItemId item : op.set.items) {
        need = std::max(need, static_cast<size_t>(item) + 1);
      }
      if (need > universe_size_) {
        universe_size_ = need;
        postings_.resize(need);
      }
      auto [it, inserted] =
          slot_of_key_.try_emplace(op.key, static_cast<uint32_t>(slots_.size()));
      if (inserted) slots_.emplace_back();
      const uint32_t slot = it->second;
      Slot& s = slots_[slot];
      if (!inserted && s.alive && SameContent(s.set, op.set)) return false;
      if (s.alive) {
        ErasePostings(slot);
      } else {
        ++num_alive_;
      }
      s.key = op.key;
      s.set = op.set;
      s.alive = true;
      ++s.version;
      AddPostings(slot);
      touched->push_back(slot);
      return true;
    }
    case DeltaOp::Kind::kRemoveQuery: {
      const uint32_t slot = SlotOfKey(op.key);
      if (slot == kInvalidSlot || !slots_[slot].alive) return false;
      ErasePostings(slot);
      slots_[slot].alive = false;
      ++slots_[slot].version;
      --num_alive_;
      touched->push_back(slot);
      return true;
    }
    case DeltaOp::Kind::kRemoveItem: {
      if (op.item >= universe_size_ || postings_[op.item].empty()) {
        return false;
      }
      // Take the posting list by move: erasing the item empties it anyway,
      // and iterating a list we mutate underneath would be UB.
      std::vector<uint32_t> holders = std::move(postings_[op.item]);
      postings_[op.item].clear();
      for (uint32_t slot : holders) {
        Slot& s = slots_[slot];
        s.set.items.Erase(op.item);
        ++s.version;
        if (s.set.items.empty()) {
          // A candidate set with no items is invalid input; the query's
          // entire result set was delisted, so the query goes too.
          ErasePostings(slot);  // No-op (no items left), kept for symmetry.
          s.alive = false;
          --num_alive_;
        }
        touched->push_back(slot);
      }
      return true;
    }
  }
  return false;
}

ApplyOpsResult WorkingSet::ApplyBatch(const DeltaBatch& batch) {
  ApplyOpsResult result;
  for (const DeltaOp& op : batch.ops) {
    if (ApplyOne(op, &result.touched_slots)) {
      ++result.ops_applied;
    } else {
      ++result.ops_noop;
    }
  }
  std::sort(result.touched_slots.begin(), result.touched_slots.end());
  result.touched_slots.erase(
      std::unique(result.touched_slots.begin(), result.touched_slots.end()),
      result.touched_slots.end());
  return result;
}

std::vector<DeltaOp> WorkingSet::DiffOps(const OctInput& truth) const {
  std::vector<DeltaOp> ops;
  std::unordered_map<uint64_t, size_t> label_occurrences;
  std::unordered_map<uint64_t, bool> in_truth;
  in_truth.reserve(truth.num_sets());

  for (SetId q = 0; q < truth.num_sets(); ++q) {
    const CandidateSet& set = truth.set(q);
    const uint64_t base = DeltaLog::KeyForLabel(set.label);
    const uint64_t key = OccurrenceKey(base, label_occurrences[base]++);
    in_truth[key] = true;
    const uint32_t slot = SlotOfKey(key);
    if (slot != kInvalidSlot && slots_[slot].alive &&
        SameContent(slots_[slot].set, set)) {
      continue;
    }
    DeltaOp op;
    op.kind = DeltaOp::Kind::kUpsertQuery;
    op.key = key;
    op.set = set;
    ops.push_back(std::move(op));
  }
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].alive) continue;
    if (in_truth.count(slots_[slot].key) != 0) continue;
    DeltaOp op;
    op.kind = DeltaOp::Kind::kRemoveQuery;
    op.key = slots_[slot].key;
    ops.push_back(std::move(op));
  }
  return ops;
}

OctInput WorkingSet::Materialize(std::vector<uint32_t>* slot_to_index) const {
  OctInput input(universe_size_);
  if (slot_to_index != nullptr) {
    slot_to_index->assign(slots_.size(), kInvalidSlot);
  }
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].alive) continue;
    const SetId id = input.Add(slots_[slot].set);
    if (slot_to_index != nullptr) (*slot_to_index)[slot] = id;
  }
  return input;
}

WorkingSet::Components WorkingSet::ComputeComponents() const {
  Components result;
  result.component_of.assign(slots_.size(), kInvalidSlot);
  if (slots_.empty()) return result;

  kernel::UnionFind uf(slots_.size());
  for (const auto& list : postings_) {
    for (size_t i = 1; i < list.size(); ++i) {
      uf.Union(list[0], list[i]);
    }
  }
  // Ascending slot scan: a component's index is assigned when its smallest
  // slot is first seen, so components come out ordered by min slot and
  // member lists ascending — deterministic across runs and platforms.
  std::unordered_map<uint32_t, uint32_t> component_of_root;
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].alive) continue;
    const uint32_t root = uf.Find(slot);
    auto [it, inserted] = component_of_root.try_emplace(
        root, static_cast<uint32_t>(result.members.size()));
    if (inserted) result.members.emplace_back();
    result.members[it->second].push_back(slot);
    result.component_of[slot] = it->second;
  }
  return result;
}

const std::vector<uint32_t>& WorkingSet::Postings(ItemId item) const {
  static const std::vector<uint32_t> kEmpty;
  if (item >= universe_size_) return kEmpty;
  return postings_[item];
}

}  // namespace delta
}  // namespace oct
