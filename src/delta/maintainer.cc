#include "delta/maintainer.h"

#include <utility>

#include "obs/trace.h"
#include "obs/watchdog.h"

namespace oct {
namespace delta {

DeltaMaintainer::DeltaMaintainer(serve::TreeStore* store,
                                 serve::ServeStats* serve_stats,
                                 Similarity sim,
                                 DeltaMaintainerOptions options)
    : store_(store),
      serve_stats_(serve_stats),
      options_(std::move(options)),
      builder_(std::move(sim), options_.builder, &stats_) {}

std::string DeltaMaintainer::NoteFor(const DeltaApplyOutcome& outcome) {
  if (outcome.fallback_full) {
    return "delta-full:" + std::to_string(outcome.total_components);
  }
  return "delta:" + std::to_string(outcome.dirty_components) + "/" +
         std::to_string(outcome.total_components);
}

Result<serve::TreeVersion> DeltaMaintainer::PublishOutcomeLocked(
    DeltaApplyOutcome outcome) {
  if (options_.verify_epsilon > 0.0) {
    OCT_RETURN_NOT_OK(
        builder_.VerifyEquivalence(outcome.tree, options_.verify_epsilon));
  }
  const std::string note = NoteFor(outcome);
  const auto published = store_->Publish(std::move(outcome.tree), note);
  if (serve_stats_ != nullptr) {
    serve_stats_->RecordPublish(published->version());
  }
  last_outcome_ = std::move(outcome);  // tree already moved out above.
  return published->version();
}

Result<serve::TreeVersion> DeltaMaintainer::PumpOnce() {
  OCT_SPAN("delta/pump");
  std::lock_guard<std::mutex> lock(mu_);
  DeltaBatch batch = log_.DrainBatch(options_.max_batch_ops);
  if (batch.empty()) {
    obs::WatchdogBeat("delta.maintainer");
    return serve::TreeVersion{0};
  }
  OCT_ASSIGN_OR_RETURN(DeltaApplyOutcome outcome,
                       builder_.ApplyBatch(batch));
  Result<serve::TreeVersion> published =
      PublishOutcomeLocked(std::move(outcome));
  // Heartbeat after the full apply+publish, so a wedged apply (or a stuck
  // publish hook) reads as a stalled pump on /sloz, not a quiet success.
  obs::WatchdogBeat("delta.maintainer");
  return published;
}

Result<serve::TreeVersion> DeltaMaintainer::Republish() {
  OCT_SPAN("delta/republish");
  std::lock_guard<std::mutex> lock(mu_);
  // An empty batch applies nothing; the builder re-resolves whatever is
  // still dirty (typically nothing — clean components splice from cache).
  OCT_ASSIGN_OR_RETURN(DeltaApplyOutcome outcome,
                       builder_.ApplyBatch(DeltaBatch{}));
  return PublishOutcomeLocked(std::move(outcome));
}

Result<serve::TreeVersion> DeltaMaintainer::PublishFullRebuild() {
  OCT_SPAN("delta/publish_full");
  std::lock_guard<std::mutex> lock(mu_);
  OCT_ASSIGN_OR_RETURN(DeltaApplyOutcome outcome, builder_.FullRebuild());
  return PublishOutcomeLocked(std::move(outcome));
}

Result<serve::CandidateBuilder::Candidate> DeltaMaintainer::BuildCandidate(
    const OctInput& batch, const fault::CancelToken* cancel) {
  (void)cancel;  // Bounded by the dirty frontier, not a deadline.
  OCT_SPAN("delta/build_candidate");
  std::lock_guard<std::mutex> lock(mu_);
  // The scheduler's batch is the new cumulative truth: diff it against the
  // working set so only changed/removed queries pay for re-resolution. The
  // universe grows to the batch's catalog first so the misc category covers
  // exactly what a batch rebuild's would.
  builder_.mutable_working_set()->EnsureUniverse(batch.universe_size());
  std::vector<DeltaOp> ops = builder_.working_set().DiffOps(batch);
  DeltaBatch delta;
  delta.ops = std::move(ops);
  uint64_t seq = 0;
  for (DeltaOp& op : delta.ops) op.seq = ++seq;
  if (!delta.ops.empty()) {
    delta.first_seq = 1;
    delta.last_seq = seq;
  }
  OCT_ASSIGN_OR_RETURN(DeltaApplyOutcome outcome,
                       builder_.ApplyBatch(delta));
  Candidate candidate;
  candidate.note = NoteFor(outcome);
  candidate.tree = std::move(outcome.tree);
  last_outcome_ = std::move(outcome);
  return candidate;
}

DeltaApplyOutcome DeltaMaintainer::last_outcome() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_outcome_;
}

}  // namespace delta
}  // namespace oct
