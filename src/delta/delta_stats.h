// DeltaStats: counters, gauges, and latency histograms of the incremental
// maintenance path, backed by a per-instance obs::MetricsRegistry (the
// ServeStats / RouterStats pattern) so tests and multi-maintainer
// processes get independent numbers while the JSON/Prometheus exporters
// keep working. All metric names live under delta.*.

#ifndef OCT_DELTA_DELTA_STATS_H_
#define OCT_DELTA_DELTA_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace oct {
namespace delta {

/// Plain-value copy of every delta metric, safe to pass around.
struct DeltaStatsSnapshot {
  /// Batches applied through DeltaBuilder::ApplyBatch.
  uint64_t batches = 0;
  /// Ops that changed the working set / ops that were no-ops.
  uint64_t ops_applied = 0;
  uint64_t ops_noop = 0;
  /// Components rebuilt (dirty) vs. reused from the component cache.
  uint64_t components_rebuilt = 0;
  uint64_t components_reused = 0;
  /// Candidate sets inside rebuilt components (the re-resolved sets).
  uint64_t sets_rebuilt = 0;
  /// Batches whose dirty region exceeded the drift bound and fell back to
  /// a full rebuild of every component.
  uint64_t fallbacks_full = 0;
  /// Spliced trees handed out (whether or not the caller published them).
  uint64_t splices = 0;
  /// Equivalence-harness runs / divergences beyond epsilon.
  uint64_t equivalence_checks = 0;
  uint64_t equivalence_failures = 0;
  /// Gauges: alive candidate sets, intersection-graph components, and the
  /// dirty-component count of the most recent batch.
  int64_t working_sets = 0;
  int64_t components_total = 0;
  int64_t last_dirty_components = 0;

  double ReuseRate() const {
    const uint64_t total = components_rebuilt + components_reused;
    return total == 0
               ? 0.0
               : static_cast<double>(components_reused) /
                     static_cast<double>(total);
  }

  /// One-line "k=v k=v ..." rendering for logs.
  std::string ToString() const;
};

class DeltaStats {
 public:
  DeltaStats();
  DeltaStats(const DeltaStats&) = delete;
  DeltaStats& operator=(const DeltaStats&) = delete;

  void RecordBatch(size_t applied, size_t noop) {
    batches_->Increment();
    ops_applied_->Increment(static_cast<uint64_t>(applied));
    ops_noop_->Increment(static_cast<uint64_t>(noop));
  }
  void RecordComponents(size_t rebuilt, size_t reused, size_t sets_rebuilt) {
    components_rebuilt_->Increment(static_cast<uint64_t>(rebuilt));
    components_reused_->Increment(static_cast<uint64_t>(reused));
    sets_rebuilt_->Increment(static_cast<uint64_t>(sets_rebuilt));
    last_dirty_components_->Set(static_cast<int64_t>(rebuilt));
  }
  void RecordFallbackFull() { fallbacks_full_->Increment(); }
  void RecordSplice() { splices_->Increment(); }
  void RecordEquivalenceCheck(bool ok) {
    equivalence_checks_->Increment();
    if (!ok) equivalence_failures_->Increment();
  }
  void SetShape(size_t working_sets, size_t components) {
    working_sets_->Set(static_cast<int64_t>(working_sets));
    components_total_->Set(static_cast<int64_t>(components));
  }
  void RecordImpact(double seconds) { impact_us_->Record(seconds * 1e6); }
  void RecordComponentBuild(double seconds) {
    component_build_us_->Record(seconds * 1e6);
  }
  void RecordSplice(double seconds) { splice_us_->Record(seconds * 1e6); }
  void RecordApply(double seconds) { apply_us_->Record(seconds * 1e6); }

  DeltaStatsSnapshot Snapshot() const;

  /// The registry backing these stats; usable with obs::MetricsToJson and
  /// the Prometheus exposition merge.
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* batches_;
  obs::Counter* ops_applied_;
  obs::Counter* ops_noop_;
  obs::Counter* components_rebuilt_;
  obs::Counter* components_reused_;
  obs::Counter* sets_rebuilt_;
  obs::Counter* fallbacks_full_;
  obs::Counter* splices_;
  obs::Counter* equivalence_checks_;
  obs::Counter* equivalence_failures_;
  obs::Gauge* working_sets_;
  obs::Gauge* components_total_;
  obs::Gauge* last_dirty_components_;
  obs::Histogram* impact_us_;
  obs::Histogram* component_build_us_;
  obs::Histogram* splice_us_;
  obs::Histogram* apply_us_;
};

}  // namespace delta
}  // namespace oct

#endif  // OCT_DELTA_DELTA_STATS_H_
