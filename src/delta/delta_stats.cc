#include "delta/delta_stats.h"

#include <cstdio>

namespace oct {
namespace delta {

std::string DeltaStatsSnapshot::ToString() const {
  char buf[360];
  std::snprintf(
      buf, sizeof(buf),
      "batches=%llu ops=%llu (noop=%llu) components=%lld "
      "rebuilt=%llu reused=%llu (reuse=%.3f) sets_rebuilt=%llu "
      "fallbacks=%llu splices=%llu equivalence=%llu/%llu "
      "working_sets=%lld last_dirty=%lld",
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(ops_applied),
      static_cast<unsigned long long>(ops_noop),
      static_cast<long long>(components_total),
      static_cast<unsigned long long>(components_rebuilt),
      static_cast<unsigned long long>(components_reused), ReuseRate(),
      static_cast<unsigned long long>(sets_rebuilt),
      static_cast<unsigned long long>(fallbacks_full),
      static_cast<unsigned long long>(splices),
      static_cast<unsigned long long>(equivalence_checks -
                                      equivalence_failures),
      static_cast<unsigned long long>(equivalence_checks),
      static_cast<long long>(working_sets),
      static_cast<long long>(last_dirty_components));
  return buf;
}

DeltaStats::DeltaStats()
    : batches_(registry_.GetCounter(
          "delta.batches", "Delta batches applied to the working set")),
      ops_applied_(registry_.GetCounter(
          "delta.ops_applied", "Ops that changed the working set")),
      ops_noop_(registry_.GetCounter(
          "delta.ops_noop",
          "Ops with no effect (identical upsert, unknown remove)")),
      components_rebuilt_(registry_.GetCounter(
          "delta.components_rebuilt",
          "Intersection-graph components re-resolved because a batch "
          "touched them")),
      components_reused_(registry_.GetCounter(
          "delta.components_reused",
          "Clean components spliced from the component cache")),
      sets_rebuilt_(registry_.GetCounter(
          "delta.sets_rebuilt",
          "Candidate sets inside rebuilt components")),
      fallbacks_full_(registry_.GetCounter(
          "delta.fallbacks_full",
          "Batches past the drift bound that fell back to a full rebuild")),
      splices_(registry_.GetCounter(
          "delta.splices", "Spliced cumulative trees produced")),
      equivalence_checks_(registry_.GetCounter(
          "delta.equivalence_checks", "Equivalence-harness runs")),
      equivalence_failures_(registry_.GetCounter(
          "delta.equivalence_failures",
          "Equivalence-harness divergences beyond epsilon")),
      working_sets_(registry_.GetGauge(
          "delta.working_sets", "Alive candidate sets in the working set")),
      components_total_(registry_.GetGauge(
          "delta.components_total",
          "Intersection-graph components over the working set")),
      last_dirty_components_(registry_.GetGauge(
          "delta.last_dirty_components",
          "Dirty components in the most recent batch")),
      impact_us_(registry_.GetHistogram(
          "delta.impact_us",
          "Impact analysis (components + dirty frontier)", "us")),
      component_build_us_(registry_.GetHistogram(
          "delta.component_build_us",
          "Per-component local re-resolution (conflicts + MIS + build)",
          "us")),
      splice_us_(registry_.GetHistogram(
          "delta.splice_us",
          "Splice: graft components + universe-wide misc category", "us")),
      apply_us_(registry_.GetHistogram(
          "delta.apply_us", "End-to-end ApplyBatch latency", "us")) {}

DeltaStatsSnapshot DeltaStats::Snapshot() const {
  DeltaStatsSnapshot snap;
  snap.batches = batches_->Value();
  snap.ops_applied = ops_applied_->Value();
  snap.ops_noop = ops_noop_->Value();
  snap.components_rebuilt = components_rebuilt_->Value();
  snap.components_reused = components_reused_->Value();
  snap.sets_rebuilt = sets_rebuilt_->Value();
  snap.fallbacks_full = fallbacks_full_->Value();
  snap.splices = splices_->Value();
  snap.equivalence_checks = equivalence_checks_->Value();
  snap.equivalence_failures = equivalence_failures_->Value();
  snap.working_sets = working_sets_->Value();
  snap.components_total = components_total_->Value();
  snap.last_dirty_components = last_dirty_components_->Value();
  return snap;
}

}  // namespace delta
}  // namespace oct
