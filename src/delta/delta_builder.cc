#include "delta/delta_builder.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "cct/cct.h"
#include "core/scoring.h"
#include "core/tree_ops.h"
#include "ctcr/ctcr.h"
#include "fault/failpoint.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oct {
namespace delta {

namespace {

/// A deadline hit degrades but does not fail; everything else non-OK does.
bool IsFailure(const Status& status) {
  return !status.ok() && status.code() != StatusCode::kDeadlineExceeded;
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

void AppendCanon(const CategoryTree& tree, NodeId id, std::string* out) {
  std::vector<std::string> children;
  children.reserve(tree.node(id).children.size());
  for (NodeId child : tree.node(id).children) {
    if (!tree.IsAlive(child)) continue;
    std::string canon;
    AppendCanon(tree, child, &canon);
    children.push_back(std::move(canon));
  }
  // Child order is a construction artifact, not category structure; sort so
  // the canonical form is order-insensitive.
  std::sort(children.begin(), children.end());
  out->push_back('(');
  out->append(tree.node(id).label);
  out->push_back('|');
  out->append(tree.node(id).direct_items.ToString());
  for (const std::string& child : children) out->append(child);
  out->push_back(')');
}

}  // namespace

DeltaBuilder::DeltaBuilder(Similarity sim, DeltaBuilderOptions options,
                           DeltaStats* stats)
    : sim_(std::move(sim)),
      options_(std::move(options)),
      stats_(stats),
      working_(options_.universe_floor) {
  OCT_CHECK(options_.max_dirty_fraction > 0.0);
}

uint64_t DeltaBuilder::ComponentSignature(
    const std::vector<uint32_t>& slots) const {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint32_t slot : slots) {
    h = MixHash(h, slot);
    h = MixHash(h, working_.version(slot));
  }
  return h;
}

std::shared_ptr<DeltaBuilder::ComponentResult> DeltaBuilder::BuildComponent(
    std::vector<uint32_t> slots) const {
  OCT_SPAN("delta/build_component");
  Timer timer;
  auto result = std::make_shared<ComponentResult>();

  // Normalize to a component-local universe so the local input — and hence
  // the build — is a pure function of component content. That is what
  // makes cached subtrees bit-compatible with a later fresh rebuild even
  // after the global universe has grown.
  size_t universe = 0;
  for (uint32_t slot : slots) {
    const ItemSet& items = working_.set(slot).items;
    if (!items.empty()) {
      universe = std::max(universe,
                          static_cast<size_t>(*std::prev(items.end())) + 1);
    }
  }
  OctInput local(universe);
  for (uint32_t slot : slots) local.Add(working_.set(slot));

  // One-worker pool: ParallelFor runs inline on the calling thread, so
  // concurrent component builds stay independent and deterministic.
  //
  // Condense runs here, component-locally, so cached subtrees arrive at
  // the splice fully refined and the splice itself stays O(tree copy) —
  // but with root_cover_candidate off: condense keeps a category only when
  // it is the *best* cover of some set, and the component-local root's
  // full item set equals the undiluted component union, so it would steal
  // best-cover designations that the global root — diluted by every other
  // component's items — never wins, condensing away the component's own
  // top-level categories. Barring the local root restores the batch
  // pipeline's choices for every set except one that spans most of the
  // whole universe (the epsilon score anchor absorbs that corner).
  ThreadPool serial(1);
  if (options_.algorithm == DeltaBuilderOptions::Algorithm::kCct) {
    cct::CctOptions opts;
    opts.condense = options_.condense;
    opts.root_cover_candidate = false;
    opts.add_misc_category = false;
    opts.pool = &serial;
    cct::CctResult built = cct::BuildCategoryTree(local, sim_, opts);
    result->local_tree = std::move(built.tree);
    result->status = std::move(built.status);
  } else {
    ctcr::CtcrOptions opts;
    opts.add_intermediate_categories = options_.add_intermediate_categories;
    opts.condense = options_.condense;
    opts.root_cover_candidate = false;
    opts.add_misc_category = false;
    opts.pool = &serial;
    ctcr::CtcrResult built = ctcr::BuildCategoryTree(local, sim_, opts);
    result->local_tree = std::move(built.tree);
    result->status = std::move(built.status);
  }
  result->slots = std::move(slots);
  if (stats_ != nullptr) stats_->RecordComponentBuild(timer.ElapsedSeconds());
  return result;
}

void DeltaBuilder::GraftComponent(const ComponentResult& component,
                                  const std::vector<uint32_t>& slot_to_index,
                                  CategoryTree* tree) {
  const CategoryTree& local = component.local_tree;
  auto remap_set = [&](SetId local_id) -> SetId {
    if (local_id == kInvalidSet || local_id >= component.slots.size()) {
      return kInvalidSet;
    }
    const uint32_t index = slot_to_index[component.slots[local_id]];
    return index == kInvalidSlot ? kInvalidSet : index;
  };

  // The local root corresponds to the global root: merge its direct items
  // (condensing can push items up to it) and covered sets, then graft its
  // children as new top-level subtrees, preserving child order.
  const CategoryNode& local_root = local.node(local.root());
  for (ItemId item : local_root.direct_items) {
    tree->AssignItem(tree->root(), item);
  }
  for (SetId covered : local_root.covered_sets) {
    const SetId mapped = remap_set(covered);
    if (mapped != kInvalidSet) {
      tree->mutable_node(tree->root()).covered_sets.push_back(mapped);
    }
  }

  struct Frame {
    NodeId local_node;
    NodeId parent;
  };
  std::vector<Frame> stack;
  for (auto it = local_root.children.rbegin(); it != local_root.children.rend();
       ++it) {
    if (local.IsAlive(*it)) stack.push_back({*it, tree->root()});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const CategoryNode& source = local.node(frame.local_node);
    const NodeId id = tree->AddCategory(frame.parent, source.label,
                                        remap_set(source.source_set));
    CategoryNode& added = tree->mutable_node(id);
    added.direct_items = source.direct_items;
    added.covered_sets.reserve(source.covered_sets.size());
    for (SetId covered : source.covered_sets) {
      const SetId mapped = remap_set(covered);
      if (mapped != kInvalidSet) added.covered_sets.push_back(mapped);
    }
    for (auto it = source.children.rbegin(); it != source.children.rend();
         ++it) {
      if (local.IsAlive(*it)) stack.push_back({*it, id});
    }
  }
}

Status DeltaBuilder::ResolveAndSplice(
    const WorkingSet::Components& components, bool bypass_cache,
    DeltaApplyOutcome* outcome) {
  Timer rebuild_timer;
  const size_t n = components.members.size();
  outcome->total_components = n;
  outcome->sets_total = working_.num_alive();

  // Impact: a component is dirty exactly when its content signature misses
  // the cache — touched slots bump versions, membership changes (component
  // splits/merges) change the slot list, and either invalidates the key.
  std::vector<uint64_t> signatures(n);
  std::vector<std::shared_ptr<ComponentResult>> resolved(n);
  std::vector<size_t> dirty;
  for (size_t i = 0; i < n; ++i) {
    signatures[i] = ComponentSignature(components.members[i]);
    if (!bypass_cache) {
      auto it = cache_.find(signatures[i]);
      if (it != cache_.end() && it->second->slots == components.members[i]) {
        it->second->last_used_batch = batch_counter_;
        resolved[i] = it->second;
        continue;
      }
    }
    dirty.push_back(i);
    outcome->sets_rebuilt += components.members[i].size();
  }

  // Drift bound: past it, piecewise splicing costs more than the batch
  // run — drop the cache and rebuild every component fresh.
  if (!bypass_cache && outcome->sets_total > 0 &&
      static_cast<double>(outcome->sets_rebuilt) /
              static_cast<double>(outcome->sets_total) >
          options_.max_dirty_fraction) {
    outcome->fallback_full = true;
    cache_.clear();
    dirty.clear();
    for (size_t i = 0; i < n; ++i) {
      resolved[i] = nullptr;
      dirty.push_back(i);
    }
    outcome->sets_rebuilt = outcome->sets_total;
  }
  outcome->dirty_components = dirty.size();
  outcome->reused_components = n - dirty.size();

  if (!dirty.empty()) {
    OCT_RETURN_NOT_OK(OCT_FAILPOINT("delta.component"));
    OCT_SPAN("delta/rebuild_dirty");
    if (options_.pool != nullptr && dirty.size() > 1) {
      // Latch, not ThreadPool::WaitIdle: WaitIdle would also wait on
      // unrelated tasks when the caller shares the pool.
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining = dirty.size();
      for (size_t k = 0; k < dirty.size(); ++k) {
        const size_t index = dirty[k];
        options_.pool->Submit([this, &components, &resolved, &mu, &cv,
                               &remaining, index] {
          auto built = BuildComponent(components.members[index]);
          std::lock_guard<std::mutex> lock(mu);
          resolved[index] = std::move(built);
          if (--remaining == 0) cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining == 0; });
    } else {
      for (size_t index : dirty) {
        resolved[index] = BuildComponent(components.members[index]);
      }
    }
    for (size_t index : dirty) {
      if (IsFailure(resolved[index]->status)) return resolved[index]->status;
    }
    // Cache insertion stays on the applying thread.
    for (size_t index : dirty) {
      resolved[index]->last_used_batch = batch_counter_;
      cache_[signatures[index]] = resolved[index];
    }
  }
  outcome->seconds_rebuild = rebuild_timer.ElapsedSeconds();

  Timer splice_timer;
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("delta.splice"));
  {
    OCT_SPAN("delta/splice");
    std::vector<uint32_t> slot_to_index;
    const OctInput cumulative = working_.Materialize(&slot_to_index);
    CategoryTree tree;
    for (size_t i = 0; i < n; ++i) {
      GraftComponent(*resolved[i], slot_to_index, &tree);
    }
    // Condense and coverage annotation already ran component-locally
    // (BuildComponent bars the local root from cover candidacy, and
    // GraftComponent remapped covered_sets to cumulative ids), so the only
    // global stage is the universe-wide misc category. This is what keeps
    // splice cost proportional to tree size rather than to a full
    // input-vs-tree scoring pass.
    AddMiscCategory(cumulative, &tree);
    OCT_DCHECK(tree.ValidateModel(cumulative).ok())
        << tree.ValidateModel(cumulative).ToString();
    outcome->tree = std::move(tree);
  }
  outcome->seconds_splice = splice_timer.ElapsedSeconds();
  if (stats_ != nullptr) stats_->RecordSplice(outcome->seconds_splice);

  // Prune cache entries whose component shape has not recurred lately
  // (superseded signatures are unreachable and would otherwise leak).
  if (options_.cache_ttl_batches > 0) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->second->last_used_batch + options_.cache_ttl_batches <
          batch_counter_) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

Result<DeltaApplyOutcome> DeltaBuilder::ApplyBatch(const DeltaBatch& batch) {
  OCT_SPAN("delta/apply_batch");
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("delta.apply"));
  Timer total;
  ++batch_counter_;

  const ApplyOpsResult applied = working_.ApplyBatch(batch);
  if (stats_ != nullptr) {
    stats_->RecordBatch(applied.ops_applied, applied.ops_noop);
  }

  DeltaApplyOutcome outcome;
  outcome.touched_slots = applied.touched_slots.size();
  Timer impact_timer;
  WorkingSet::Components components;
  {
    OCT_SPAN("delta/impact");
    components = working_.ComputeComponents();
  }
  outcome.seconds_impact = impact_timer.ElapsedSeconds();
  if (stats_ != nullptr) {
    stats_->RecordImpact(outcome.seconds_impact);
    stats_->SetShape(working_.num_alive(), components.members.size());
  }

  OCT_RETURN_NOT_OK(ResolveAndSplice(components, /*bypass_cache=*/false,
                                     &outcome));
  if (stats_ != nullptr) {
    stats_->RecordComponents(outcome.dirty_components,
                             outcome.reused_components, outcome.sets_rebuilt);
    if (outcome.fallback_full) stats_->RecordFallbackFull();
    stats_->RecordSplice();
    stats_->RecordApply(total.ElapsedSeconds());
  }
  return outcome;
}

Result<DeltaApplyOutcome> DeltaBuilder::FullRebuild() {
  OCT_SPAN("delta/full_rebuild");
  Timer total;
  ++batch_counter_;
  cache_.clear();

  DeltaApplyOutcome outcome;
  Timer impact_timer;
  const WorkingSet::Components components = working_.ComputeComponents();
  outcome.seconds_impact = impact_timer.ElapsedSeconds();
  if (stats_ != nullptr) {
    stats_->SetShape(working_.num_alive(), components.members.size());
  }
  OCT_RETURN_NOT_OK(ResolveAndSplice(components, /*bypass_cache=*/true,
                                     &outcome));
  if (stats_ != nullptr) {
    stats_->RecordComponents(outcome.dirty_components,
                             outcome.reused_components, outcome.sets_rebuilt);
    stats_->RecordSplice();
    stats_->RecordApply(total.ElapsedSeconds());
  }
  return outcome;
}

CategoryTree DeltaBuilder::PlainTree() const {
  const OctInput cumulative = CumulativeInput();
  ThreadPool serial(1);
  if (options_.algorithm == DeltaBuilderOptions::Algorithm::kCct) {
    cct::CctOptions opts;
    opts.condense = options_.condense;
    opts.pool = &serial;
    return cct::BuildCategoryTree(cumulative, sim_, opts).tree;
  }
  ctcr::CtcrOptions opts;
  opts.add_intermediate_categories = options_.add_intermediate_categories;
  opts.condense = options_.condense;
  opts.pool = &serial;
  return ctcr::BuildCategoryTree(cumulative, sim_, opts).tree;
}

Status DeltaBuilder::VerifyEquivalence(const CategoryTree& spliced,
                                       double epsilon) {
  OCT_SPAN("delta/verify_equivalence");
  // Anchor 1 — exact: a fresh sharded rebuild (cache bypassed) must agree
  // canonically. Any divergence means cache reuse changed the result.
  DeltaApplyOutcome fresh;
  const WorkingSet::Components components = working_.ComputeComponents();
  OCT_RETURN_NOT_OK(ResolveAndSplice(components, /*bypass_cache=*/true,
                                     &fresh));
  const bool structural_ok =
      CanonicalTreeString(spliced) == CanonicalTreeString(fresh.tree);

  // Anchor 2 — epsilon: normalized score against the plain full-batch
  // pipeline on the same cumulative input.
  const OctInput cumulative = CumulativeInput();
  const double sharded_score =
      ScoreTree(cumulative, spliced, sim_, nullptr).normalized;
  const double plain_score =
      ScoreTree(cumulative, PlainTree(), sim_, nullptr).normalized;
  const double gap = std::abs(sharded_score - plain_score);
  const bool score_ok = gap <= epsilon;

  if (stats_ != nullptr) {
    stats_->RecordEquivalenceCheck(structural_ok && score_ok);
  }
  if (!structural_ok) {
    return Status::Internal(
        "delta equivalence: spliced tree diverges structurally from a "
        "fresh sharded rebuild of the cumulative input");
  }
  if (!score_ok) {
    return Status::Internal(
        "delta equivalence: normalized score gap vs the plain batch tree "
        "is " +
        std::to_string(gap) + ", beyond epsilon " + std::to_string(epsilon) +
        " (sharded " + std::to_string(sharded_score) + ", plain " +
        std::to_string(plain_score) + ")");
  }
  return Status::OK();
}

std::string DeltaBuilder::CanonicalTreeString(const CategoryTree& tree) {
  std::string out;
  AppendCanon(tree, tree.root(), &out);
  return out;
}

}  // namespace delta
}  // namespace oct
