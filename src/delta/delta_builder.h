// DeltaBuilder: incremental re-resolution — the computational core of
// oct::delta.
//
// The lever is a locality property of the whole CTCR pipeline: take the
// intersection graph over candidate sets (an edge when two sets share an
// item) and its connected components. Conflicts (2- and 3-), must-cover-
// together pairs, parent selection, item chains, Algorithm 2's greedy
// (its global argmax interleaves but never crosses components), and
// condensing all operate strictly within a component — sets in different
// components have zero overlap, hence zero similarity, hence no
// interaction. Two stages are *not* component-local and are handled at
// splice time: the universe-wide misc category (added once on the spliced
// tree) and the root-level intermediate-categories pass (skipped at the
// root by shard policy — see DESIGN.md §11 for the exact policy
// statement).
//
// So the builder maintains, per component, a locally-built subtree keyed
// by a content signature over its (slot, version) pairs. A delta batch
// bumps versions of touched slots; components whose signature misses the
// cache are the *dirty frontier* and get rebuilt (in parallel when a pool
// is provided); clean components splice straight from the cache. When the
// dirty frontier exceeds `max_dirty_fraction` of the working set, the
// builder falls back to a full rebuild (every component fresh) — past
// that bound the piecewise path costs more than the batch run.
//
// Equivalence anchors (the harness in VerifyEquivalence):
//  1. Exact: the incremental tree is canonically identical to a fresh
//     sharded rebuild of the same cumulative input — cache reuse is
//     invisible. This holds because local builds are deterministic
//     functions of component content alone.
//  2. Epsilon: its normalized score is within epsilon of the plain
//     full-batch ctcr/cct tree on the same input. Sharded and plain trees
//     may differ structurally (root-level intermediates; the MIS node
//     budget is per-component here, shared there) but must agree on
//     quality.
//
// Single-writer: one thread calls ApplyBatch/FullRebuild at a time.
// `options.pool` parallelizes *within* one call; it must not be the pool
// the calling task itself runs on (the call blocks on a latch).

#ifndef OCT_DELTA_DELTA_BUILDER_H_
#define OCT_DELTA_DELTA_BUILDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/category_tree.h"
#include "core/similarity.h"
#include "delta/delta_log.h"
#include "delta/delta_stats.h"
#include "delta/working_set.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace oct {
namespace delta {

struct DeltaBuilderOptions {
  /// Per-component construction algorithm.
  enum class Algorithm { kCtcr, kCct };
  Algorithm algorithm = Algorithm::kCtcr;
  /// Drift bound: when the dirty frontier covers more than this fraction
  /// of the alive candidate sets, fall back to a full rebuild.
  double max_dirty_fraction = 0.3;
  /// Pool for parallel dirty-component rebuilds (null = serial). Must be a
  /// pool the calling thread does not run on.
  ThreadPool* pool = nullptr;
  /// Refinement passthrough (match CtcrOptions defaults).
  bool add_intermediate_categories = true;
  bool condense = true;
  /// Cached component subtrees unused for this many batches are pruned
  /// (0 = keep forever).
  uint64_t cache_ttl_batches = 16;
  /// Initial universe size of the working set (it still grows past this as
  /// upserts arrive). Set to the catalog size so the spliced tree's misc
  /// category covers the full catalog, exactly like a batch rebuild.
  size_t universe_floor = 0;
};

/// What one ApplyBatch / FullRebuild produced.
struct DeltaApplyOutcome {
  /// The spliced cumulative tree (valid when status.ok()).
  CategoryTree tree;
  bool fallback_full = false;
  size_t total_components = 0;
  size_t dirty_components = 0;
  size_t reused_components = 0;
  /// Candidate sets inside dirty components / alive sets overall.
  size_t sets_rebuilt = 0;
  size_t sets_total = 0;
  size_t touched_slots = 0;
  double seconds_impact = 0.0;
  double seconds_rebuild = 0.0;
  double seconds_splice = 0.0;
};

class DeltaBuilder {
 public:
  /// `stats` may be null. The builder owns its working set.
  explicit DeltaBuilder(Similarity sim, DeltaBuilderOptions options = {},
                        DeltaStats* stats = nullptr);

  DeltaBuilder(const DeltaBuilder&) = delete;
  DeltaBuilder& operator=(const DeltaBuilder&) = delete;

  const WorkingSet& working_set() const { return working_; }
  WorkingSet* mutable_working_set() { return &working_; }

  /// Applies `batch` to the working set, rebuilds the dirty frontier (or
  /// everything, past the drift bound), and returns the spliced cumulative
  /// tree. On error (injected delta.* failpoints) the working set HAS
  /// absorbed the batch but no tree is produced; the next successful call
  /// re-resolves the accumulated dirty region — recovery is automatic.
  Result<DeltaApplyOutcome> ApplyBatch(const DeltaBatch& batch);

  /// Full rebuild of the cumulative state: every component fresh,
  /// repopulating the cache. The latency baseline ApplyBatch is measured
  /// against, and the fallback target.
  Result<DeltaApplyOutcome> FullRebuild();

  /// Plain (non-sharded) full-batch tree on the cumulative input — the
  /// paper's batch pipeline, used as the epsilon anchor.
  CategoryTree PlainTree() const;

  /// The cumulative input (alive sets, ascending slot order).
  OctInput CumulativeInput() const { return working_.Materialize(nullptr); }

  /// The equivalence harness. Checks (1) canonical equality of `spliced`
  /// against a fresh sharded rebuild (cache bypassed) and (2) normalized
  /// score within `epsilon` of PlainTree(). Returns OK or an Internal
  /// error describing the divergence.
  Status VerifyEquivalence(const CategoryTree& spliced, double epsilon);

  /// Canonical child-order-insensitive rendering: two trees are the same
  /// category structure iff their canonical strings match.
  static std::string CanonicalTreeString(const CategoryTree& tree);

  size_t cache_size() const { return cache_.size(); }

 private:
  struct ComponentResult {
    /// Locally-built subtree; source_set / covered_sets hold *local* ids
    /// (positions in `slots`), remapped at splice time.
    CategoryTree local_tree;
    std::vector<uint32_t> slots;
    /// Build status (OK, kDeadlineExceeded, or an injected build error).
    Status status = Status::OK();
    uint64_t last_used_batch = 0;
  };

  /// Content signature of a component: hash over ordered (slot, version).
  uint64_t ComponentSignature(const std::vector<uint32_t>& slots) const;
  /// Builds one component's local subtree (pure function of its content).
  std::shared_ptr<ComponentResult> BuildComponent(
      std::vector<uint32_t> slots) const;
  /// Rebuilds dirty components, splices everything, fills `outcome`.
  Status ResolveAndSplice(const WorkingSet::Components& components,
                          bool bypass_cache, DeltaApplyOutcome* outcome);
  /// Grafts one component subtree under `tree`'s root, remapping set ids
  /// from local positions to cumulative-input indices.
  static void GraftComponent(const ComponentResult& component,
                             const std::vector<uint32_t>& slot_to_index,
                             CategoryTree* tree);

  const Similarity sim_;
  const DeltaBuilderOptions options_;
  DeltaStats* const stats_;
  WorkingSet working_;
  std::unordered_map<uint64_t, std::shared_ptr<ComponentResult>> cache_;
  uint64_t batch_counter_ = 0;
};

}  // namespace delta
}  // namespace oct

#endif  // OCT_DELTA_DELTA_BUILDER_H_
