// DeltaMaintainer: the serve-layer face of oct::delta. It owns the
// ingestion log, the incremental builder, and the publish path:
//
//   traffic threads --> DeltaLog (coalescing, thread-safe)
//                          |
//                 PumpOnce (maintainer thread)
//                          |
//        DeltaBuilder::ApplyBatch  -- dirty frontier only
//                          |
//           TreeStore::Publish("delta:<dirty>/<total>")
//                          |
//                readers (snapshot flip, never blocked)
//
// Two ways to drive it:
//   - Direct: producers call UpsertQuery/RemoveQuery/RemoveItem, something
//     periodically calls PumpOnce. This is the online_store / bench /
//     chaos loop.
//   - Scheduler hook: the maintainer is a serve::CandidateBuilder, so a
//     RebuildScheduler with policy.builder = &maintainer routes its
//     drift-triggered rebuilds through the delta path — BuildCandidate
//     diffs the offered batch against the cumulative working set and
//     re-resolves only what changed; gates and publish stay with the
//     scheduler.
//
// Thread-safety: the log is safe for concurrent producers; apply/publish
// serialize on an internal mutex (PumpOnce, Republish, FullRebuild, and
// BuildCandidate may be called from different threads, one at a time).

#ifndef OCT_DELTA_MAINTAINER_H_
#define OCT_DELTA_MAINTAINER_H_

#include <mutex>
#include <string>

#include "core/input.h"
#include "core/similarity.h"
#include "delta/delta_builder.h"
#include "delta/delta_log.h"
#include "delta/delta_stats.h"
#include "serve/rebuild_scheduler.h"
#include "serve/serve_stats.h"
#include "serve/tree_store.h"
#include "util/status.h"

namespace oct {
namespace delta {

struct DeltaMaintainerOptions {
  DeltaBuilderOptions builder;
  /// When > 0, every spliced tree is audited by the equivalence harness
  /// (DeltaBuilder::VerifyEquivalence) with this epsilon before publish;
  /// a divergence fails the pump and nothing is published. Expensive
  /// (fresh rebuild + plain build per pump) — for tests and canaries.
  double verify_epsilon = 0.0;
  /// Max ops drained per PumpOnce (0 = drain everything pending).
  size_t max_batch_ops = 0;
};

class DeltaMaintainer : public serve::CandidateBuilder {
 public:
  /// `store` must outlive the maintainer. `serve_stats` may be null (delta
  /// publishes then don't show up in serve.* metrics).
  DeltaMaintainer(serve::TreeStore* store, serve::ServeStats* serve_stats,
                  Similarity sim, DeltaMaintainerOptions options = {});

  DeltaMaintainer(const DeltaMaintainer&) = delete;
  DeltaMaintainer& operator=(const DeltaMaintainer&) = delete;

  // --- Ingestion (thread-safe, non-blocking w.r.t. rebuilds) ---
  void UpsertQuery(const std::string& label, CandidateSet set) {
    log_.UpsertQuery(DeltaLog::KeyForLabel(label), std::move(set));
  }
  void RemoveQuery(const std::string& label) {
    log_.RemoveQuery(DeltaLog::KeyForLabel(label));
  }
  void RemoveItem(ItemId item) { log_.RemoveItem(item); }
  DeltaLog& log() { return log_; }

  /// Drains pending ops, applies them incrementally, and publishes the
  /// spliced tree with note "delta:<dirty>/<total>" (or "delta-full:..."
  /// after a drift-bound fallback). Returns the published version, or 0
  /// when nothing was pending. On error the drained ops are already in the
  /// working set; Republish() (or the next pump) recovers.
  Result<serve::TreeVersion> PumpOnce();

  /// Re-splices and republishes the current cumulative state without
  /// draining ops — the recovery path after a failed pump (clean
  /// components come straight from the cache, so this is cheap).
  Result<serve::TreeVersion> Republish();

  /// Full rebuild (every component fresh) + publish. Bootstrap and manual
  /// fallback.
  Result<serve::TreeVersion> PublishFullRebuild();

  /// serve::CandidateBuilder: diffs `batch` (the scheduler's cumulative
  /// query-log truth) against the working set and runs the delta path on
  /// the difference. The scheduler keeps gates + publish. `cancel` is
  /// ignored — the delta path is bounded by the dirty frontier instead.
  Result<Candidate> BuildCandidate(const OctInput& batch,
                                   const fault::CancelToken* cancel) override;

  const DeltaStats& stats() const { return stats_; }
  const DeltaBuilder& builder() const { return builder_; }

  /// Outcome of the last successful apply (its `tree` is empty — it was
  /// moved into the published snapshot).
  DeltaApplyOutcome last_outcome() const;

 private:
  /// Publishes `outcome`'s tree and records it. Callers hold mu_.
  Result<serve::TreeVersion> PublishOutcomeLocked(DeltaApplyOutcome outcome);
  /// "delta:<dirty>/<total>" or "delta-full:<total>".
  static std::string NoteFor(const DeltaApplyOutcome& outcome);

  serve::TreeStore* const store_;
  serve::ServeStats* const serve_stats_;
  const DeltaMaintainerOptions options_;
  DeltaStats stats_;
  DeltaLog log_;
  mutable std::mutex mu_;  // Serializes apply/publish; guards the below.
  DeltaBuilder builder_;
  DeltaApplyOutcome last_outcome_;
};

}  // namespace delta
}  // namespace oct

#endif  // OCT_DELTA_MAINTAINER_H_
