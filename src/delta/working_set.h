// WorkingSet: the cumulative truth the delta path maintains — every
// candidate set ever upserted and not yet removed, in stable *slots*.
//
// Slots are the delta subsystem's frame of reference:
//   - a query key maps to one slot for the working set's lifetime, so a
//     component signature (slot, version) pairs is stable across batches
//     even as other sets come and go;
//   - removals tombstone the slot (ids never shift);
//   - every content change bumps the slot's version, which is what the
//     DeltaBuilder's component cache keys on.
//
// The working set also owns the impact-analysis substrate: an
// incrementally-maintained item -> alive-slots inverted index (the same
// shape kernel::ItemSetIndex builds batch-style), folded through
// kernel::UnionFind into intersection-graph components. Two sets can
// conflict, must-cover-together, or compete for an item only when they
// share an item — so a component is exactly the region of the conflict
// graph a change can reach, and the frontier of a delta batch is the set
// of components its touched slots land in.
//
// Single-writer: the DeltaBuilder/DeltaMaintainer applies batches from one
// thread (readers go through published TreeSnapshots, never this class).

#ifndef OCT_DELTA_WORKING_SET_H_
#define OCT_DELTA_WORKING_SET_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/input.h"
#include "delta/delta_log.h"

namespace oct {
namespace delta {

inline constexpr uint32_t kInvalidSlot = std::numeric_limits<uint32_t>::max();

/// What one ApplyBatch changed.
struct ApplyOpsResult {
  /// Slots whose content changed (sorted, unique). Tombstoned slots are
  /// included — their old component must rebuild without them.
  std::vector<uint32_t> touched_slots;
  size_t ops_applied = 0;
  /// Ops with no effect (remove of an unknown key, upsert with identical
  /// content, RemoveItem of an absent item).
  size_t ops_noop = 0;
};

class WorkingSet {
 public:
  explicit WorkingSet(size_t universe_size = 0)
      : universe_size_(universe_size), postings_(universe_size) {}

  /// Applies a drained batch in seq order. The universe grows monotonically
  /// to cover every upserted item (it never shrinks on RemoveItem — item
  /// ids are dense and stay reserved).
  ApplyOpsResult ApplyBatch(const DeltaBatch& batch);

  /// Ops that would transform this working set into `truth`: upserts for
  /// new/changed labels (in truth order), then removals for labels gone
  /// from it (in slot order). Keys are KeyForLabel(label); duplicate labels
  /// within one input are disambiguated by occurrence order. This is how a
  /// full query-log batch (the RebuildScheduler currency) feeds the delta
  /// path.
  std::vector<DeltaOp> DiffOps(const OctInput& truth) const;

  /// Grows the universe to at least `n` items (no-op when already there).
  /// Used to match a batch input's catalog universe so the misc category
  /// covers the same items a batch rebuild would.
  void EnsureUniverse(size_t n) {
    if (n > universe_size_) {
      universe_size_ = n;
      postings_.resize(n);
    }
  }

  size_t universe_size() const { return universe_size_; }
  size_t num_slots() const { return slots_.size(); }
  size_t num_alive() const { return num_alive_; }

  bool alive(uint32_t slot) const { return slots_[slot].alive; }
  const CandidateSet& set(uint32_t slot) const { return slots_[slot].set; }
  uint64_t version(uint32_t slot) const { return slots_[slot].version; }
  uint64_t key(uint32_t slot) const { return slots_[slot].key; }
  /// Slot of a query key; kInvalidSlot when never upserted.
  uint32_t SlotOfKey(uint64_t key) const;

  /// The cumulative OctInput: alive slots in ascending slot order. When
  /// `slot_to_index` is non-null it receives, per slot, the set's index in
  /// the materialized input (kInvalidSlot for tombstones) — the map splice
  /// uses to rebase per-component SetIds.
  OctInput Materialize(std::vector<uint32_t>* slot_to_index = nullptr) const;

  /// Intersection-graph components over the alive slots.
  struct Components {
    /// Per component: member slots, ascending. Components are ordered by
    /// their smallest slot — deterministic across runs.
    std::vector<std::vector<uint32_t>> members;
    /// Per slot: component index, kInvalidSlot for tombstones.
    std::vector<uint32_t> component_of;
  };
  Components ComputeComponents() const;

  /// Alive slots containing `item` (ascending). Empty for out-of-universe.
  const std::vector<uint32_t>& Postings(ItemId item) const;

 private:
  struct Slot {
    uint64_t key = 0;
    CandidateSet set;
    uint64_t version = 0;
    bool alive = false;
  };

  void AddPostings(uint32_t slot);
  void ErasePostings(uint32_t slot);
  bool ApplyOne(const DeltaOp& op, std::vector<uint32_t>* touched);

  size_t universe_size_ = 0;
  size_t num_alive_ = 0;
  std::vector<Slot> slots_;
  std::unordered_map<uint64_t, uint32_t> slot_of_key_;
  /// item -> alive slots containing it, each list ascending.
  std::vector<std::vector<uint32_t>> postings_;
};

}  // namespace delta
}  // namespace oct

#endif  // OCT_DELTA_WORKING_SET_H_
