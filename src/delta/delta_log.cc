#include "delta/delta_log.h"

#include <utility>

namespace oct {
namespace delta {

const char* DeltaOpKindName(DeltaOp::Kind kind) {
  switch (kind) {
    case DeltaOp::Kind::kUpsertQuery:
      return "upsert_query";
    case DeltaOp::Kind::kRemoveQuery:
      return "remove_query";
    case DeltaOp::Kind::kRemoveItem:
      return "remove_item";
  }
  return "unknown";
}

uint64_t DeltaLog::Append(DeltaOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  op.seq = next_seq_++;
  const uint64_t seq = op.seq;

  // Coalesce: drop the superseded pending op, append the new one at the
  // tail. Tail placement is what keeps this equivalent to applying both
  // ops in order — an upsert overwrites the whole set, so any RemoveItem
  // between the two pending positions still acts on the state the in-order
  // application would have given it.
  if (op.kind == DeltaOp::Kind::kRemoveItem) {
    auto it = by_item_.find(op.item);
    if (it != by_item_.end()) {
      queue_.erase(it->second);
      by_item_.erase(it);
      ++coalesced_;
    }
    queue_.push_back(std::move(op));
    by_item_[queue_.back().item] = std::prev(queue_.end());
  } else {
    auto it = by_key_.find(op.key);
    if (it != by_key_.end()) {
      queue_.erase(it->second);
      by_key_.erase(it);
      ++coalesced_;
    }
    queue_.push_back(std::move(op));
    by_key_[queue_.back().key] = std::prev(queue_.end());
  }
  return seq;
}

uint64_t DeltaLog::UpsertQuery(uint64_t key, CandidateSet set) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kUpsertQuery;
  op.key = key;
  op.set = std::move(set);
  return Append(std::move(op));
}

uint64_t DeltaLog::RemoveQuery(uint64_t key) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRemoveQuery;
  op.key = key;
  return Append(std::move(op));
}

uint64_t DeltaLog::RemoveItem(ItemId item) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRemoveItem;
  op.item = item;
  return Append(std::move(op));
}

DeltaBatch DeltaLog::DrainBatch(size_t max_ops) {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaBatch batch;
  const size_t take =
      max_ops == 0 ? queue_.size() : std::min(max_ops, queue_.size());
  batch.ops.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    DeltaOp op = std::move(queue_.front());
    queue_.pop_front();
    if (op.kind == DeltaOp::Kind::kRemoveItem) {
      by_item_.erase(op.item);
    } else {
      by_key_.erase(op.key);
    }
    batch.ops.push_back(std::move(op));
  }
  if (!batch.ops.empty()) {
    batch.first_seq = batch.ops.front().seq;
    batch.last_seq = batch.ops.back().seq;
  }
  return batch;
}

size_t DeltaLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t DeltaLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t DeltaLog::coalesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

uint64_t DeltaLog::KeyForLabel(const std::string& label) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  for (unsigned char c : label) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime.
  }
  // Reserve 0 as "no key" so default-constructed ops are visibly invalid.
  return hash == 0 ? 1 : hash;
}

}  // namespace delta
}  // namespace oct
