#include "store/replica.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "fault/failpoint.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "util/logging.h"

namespace oct {
namespace store {

namespace fs = std::filesystem;

namespace {

obs::Counter* ReplCounter(const char* name) {
  return obs::MetricsRegistry::Default()->GetCounter(name);
}

}  // namespace

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kLagging:
      return "lagging";
    case ReplicaState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

Replica::Replica(std::string name, std::string dir, size_t retain)
    : name_(std::move(name)), dir_(std::move(dir)), tree_store_(retain) {}

Result<std::unique_ptr<Replica>> Replica::Open(std::string name,
                                               std::string dir,
                                               size_t retain) {
  std::unique_ptr<Replica> replica(
      new Replica(std::move(name), std::move(dir), retain));
  OCT_ASSIGN_OR_RETURN(replica->log_, VersionLog::Open(replica->dir_));
  // A reopened replica resumes serving whatever it had installed.
  if (replica->log_->LatestVersion() > 0) {
    OCT_ASSIGN_OR_RETURN(CategoryTree tree, replica->log_->OpenLatest());
    replica->tree_store_.Publish(
        std::move(tree),
        "replica:" + replica->name_ + ":v" +
            std::to_string(replica->log_->LatestVersion()));
  }
  return replica;
}

Status Replica::Install(const std::string& record_bytes) {
  OCT_SPAN("store/replica_install");
  static obs::Counter* installs = ReplCounter("repl.installs");
  static obs::Counter* failures = ReplCounter("repl.install_failures");
  static obs::Counter* quarantines = ReplCounter("repl.quarantines");
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == ReplicaState::kQuarantined) {
    return Status::FailedPrecondition("replica " + name_ +
                                      " is quarantined; re-seed first");
  }
  Status armed = OCT_FAILPOINT("repl.install");
  if (!armed.ok()) {
    failures->Increment();
    return armed;
  }
  const TreeVersion before = log_->LatestVersion();
  Status s = log_->InstallRecord(record_bytes);
  if (s.ok()) {
    state_ = ReplicaState::kHealthy;
    const TreeVersion after = log_->LatestVersion();
    if (after != before) {
      auto tree = log_->OpenLatest();
      if (tree.ok()) {
        tree_store_.Publish(std::move(tree).value(),
                            "replica:" + name_ + ":v" +
                                std::to_string(after));
      }
      installs->Increment();
    }
    return Status::OK();
  }
  failures->Increment();
  if (s.code() == StatusCode::kOutOfRange) {
    state_ = ReplicaState::kLagging;
  } else if (s.code() == StatusCode::kDataLoss) {
    OCT_LOG_WARNING << "quarantining replica " << name_ << ": "
                    << s.ToString();
    state_ = ReplicaState::kQuarantined;
    quarantines->Increment();
  }
  return s;
}

Status Replica::ReSeed(const std::vector<std::string>& records) {
  OCT_SPAN("store/replica_reseed");
  static obs::Counter* reseeds = ReplCounter("repl.reseeds");
  std::lock_guard<std::mutex> lock(mu_);
  // Wipe and rebuild the on-disk log from the provided lineage; the
  // replica's TreeStore keeps serving its old snapshot until the new one
  // publishes (readers never see a gap).
  log_.reset();
  std::error_code ec;
  fs::remove_all(dir_, ec);
  if (ec) {
    return Status::Internal("cannot wipe replica dir " + dir_ + ": " +
                            ec.message());
  }
  OCT_ASSIGN_OR_RETURN(log_, VersionLog::Open(dir_));
  for (const std::string& record : records) {
    OCT_RETURN_NOT_OK(log_->InstallRecord(record));
  }
  state_ = ReplicaState::kHealthy;
  if (log_->LatestVersion() > 0) {
    OCT_ASSIGN_OR_RETURN(CategoryTree tree, log_->OpenLatest());
    tree_store_.Publish(std::move(tree),
                        "replica:" + name_ + ":reseed:v" +
                            std::to_string(log_->LatestVersion()));
  }
  reseeds->Increment();
  return Status::OK();
}

ReplicaState Replica::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

TreeVersion Replica::LatestVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_ == nullptr ? 0 : log_->LatestVersion();
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

Result<std::string> FetchRecordOverHttp(int port, TreeVersion version,
                                        double timeout_seconds) {
  OCT_ASSIGN_OR_RETURN(
      const std::string response,
      obs::HttpGetLocal(port,
                        "/store/record?version=" + std::to_string(version),
                        timeout_seconds));
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return Status::Internal("malformed /store/record response");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::NotFound("/store/record v" + std::to_string(version) +
                            ": " + status_line);
  }
  return response.substr(body_start + 4);
}

// ---------------------------------------------------------------------------
// ReplicaSet
// ---------------------------------------------------------------------------

ReplicaSet::ReplicaSet(const VersionLog* primary) : primary_(primary) {
  fetcher_ = [primary](TreeVersion version) {
    return primary->RecordBytes(version);
  };
}

void ReplicaSet::SetFetcher(RecordFetcher fetcher) {
  std::lock_guard<std::mutex> lock(mu_);
  fetcher_ = std::move(fetcher);
}

Replica* ReplicaSet::AddReplica(std::unique_ptr<Replica> replica) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_.push_back(std::move(replica));
  return replicas_.back().get();
}

size_t ReplicaSet::num_replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_.size();
}

Replica* ReplicaSet::replica(size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  return i < replicas_.size() ? replicas_[i].get() : nullptr;
}

Status ReplicaSet::InstallWithCatchUp(Replica* replica, TreeVersion version) {
  RecordFetcher fetcher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fetcher = fetcher_;
  }
  OCT_ASSIGN_OR_RETURN(const std::string record, fetcher(version));
  Status s = replica->Install(record);
  if (s.code() != StatusCode::kOutOfRange) return s;
  // Lineage gap: the replica missed earlier ships. Log versions ascend
  // contiguously (WarmStart keeps the sequence dense across restarts), so
  // walk the gap in order; a version the primary already compacted away
  // means the replica fell behind the horizon and must re-seed instead.
  for (TreeVersion v = replica->LatestVersion() + 1; v <= version; ++v) {
    auto gap_record = fetcher(v);
    if (!gap_record.ok()) {
      OCT_LOG_WARNING << "replica " << replica->name()
                      << " fell behind the compaction horizon at v" << v
                      << "; re-seeding";
      std::vector<std::string> records;
      for (const LogEntry& e : primary_->Lineage()) {
        OCT_ASSIGN_OR_RETURN(std::string bytes, fetcher(e.version));
        records.push_back(std::move(bytes));
      }
      return replica->ReSeed(records);
    }
    OCT_RETURN_NOT_OK(replica->Install(gap_record.value()));
  }
  return Status::OK();
}

Status ReplicaSet::ShipCommitted(TreeVersion version) {
  OCT_SPAN("store/ship_committed");
  static obs::Counter* ships = ReplCounter("repl.ships");
  static obs::Counter* ship_failures = ReplCounter("repl.ship_failures");
  static obs::Gauge* max_lag = obs::MetricsRegistry::Default()->GetGauge(
      "repl.max_lag", "versions the most-behind healthy replica trails by");
  std::vector<Replica*> replicas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replicas.reserve(replicas_.size());
    for (const auto& r : replicas_) replicas.push_back(r.get());
  }
  Status first_error = Status::OK();
  for (Replica* replica : replicas) {
    if (replica->state() == ReplicaState::kQuarantined) continue;
    const Status dropped = OCT_FAILPOINT("repl.ship");
    if (!dropped.ok()) {
      // Simulated transport drop: the replica just lags and catches up on
      // the next ship.
      ship_failures->Increment();
      continue;
    }
    const Status s = InstallWithCatchUp(replica, version);
    if (s.ok()) {
      ships->Increment();
    } else {
      ship_failures->Increment();
      if (first_error.ok() && s.code() != StatusCode::kDataLoss) {
        first_error = s;
      }
    }
  }
  uint64_t worst = 0;
  const TreeVersion primary_latest = primary_->LatestVersion();
  for (Replica* replica : replicas) {
    if (replica->state() == ReplicaState::kQuarantined) continue;
    const TreeVersion v = replica->LatestVersion();
    if (v < primary_latest) worst = std::max(worst, primary_latest - v);
  }
  max_lag->Set(static_cast<int64_t>(worst));
  // One heartbeat per completed ship pass (even a failing one: the pump is
  // alive, the transport is the problem — the breaker owns that signal).
  obs::WatchdogBeat("store.replica_shipper");
  return first_error;
}

Status ReplicaSet::SyncAll() {
  const TreeVersion latest = primary_->LatestVersion();
  if (latest == 0) return Status::OK();
  OCT_RETURN_NOT_OK(ReSeedQuarantined());
  return ShipCommitted(latest);
}

Status ReplicaSet::ReSeedQuarantined() {
  std::vector<Replica*> replicas;
  RecordFetcher fetcher;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : replicas_) replicas.push_back(r.get());
    fetcher = fetcher_;
  }
  std::vector<std::string> records;
  for (Replica* replica : replicas) {
    if (replica->state() != ReplicaState::kQuarantined) continue;
    if (records.empty()) {
      for (const LogEntry& e : primary_->Lineage()) {
        OCT_ASSIGN_OR_RETURN(std::string bytes, fetcher(e.version));
        records.push_back(std::move(bytes));
      }
    }
    OCT_RETURN_NOT_OK(replica->ReSeed(records));
  }
  return Status::OK();
}

Result<Replica*> ReplicaSet::PromoteBest() {
  OCT_SPAN("store/promote_best");
  static obs::Counter* promotions = ReplCounter("repl.promotions");
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("repl.promote"));
  std::vector<Replica*> replicas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : replicas_) replicas.push_back(r.get());
  }
  Replica* best = nullptr;
  TreeVersion best_version = 0;
  for (Replica* replica : replicas) {
    if (replica->state() == ReplicaState::kQuarantined) continue;
    const TreeVersion v = replica->LatestVersion();
    if (best == nullptr || v > best_version) {
      best = replica;
      best_version = v;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        "no promotable replica (all quarantined or none registered)");
  }
  promotions->Increment();
  return best;
}

std::vector<ReplicaStatus> ReplicaSet::Statuses() const {
  std::vector<Replica*> replicas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : replicas_) replicas.push_back(r.get());
  }
  const TreeVersion primary_latest = primary_->LatestVersion();
  std::vector<ReplicaStatus> out;
  out.reserve(replicas.size());
  for (Replica* replica : replicas) {
    ReplicaStatus status;
    status.name = replica->name();
    status.state = replica->state();
    status.version = replica->LatestVersion();
    status.lag = status.version < primary_latest
                     ? primary_latest - status.version
                     : 0;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace store
}  // namespace oct
