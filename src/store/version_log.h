// VersionLog: the durable, append-only history of published trees — the
// storage layer under TreeStore. Layout on disk (one directory per log):
//
//   seg-000001.log     append-only segments of CRC32-framed records, each
//   seg-000002.log     record one nested-set-encoded snapshot:
//   ...                  record <version> <parent> <bytes> <crc32> <note>
//   MANIFEST             <octstore-nested v1 payload>
//
// The MANIFEST names every committed record (version lineage + segment,
// offset, length, payload CRC) and carries its own trailing CRC. It is
// replaced by temp-file + fsync + atomic rename, which makes the rename the
// *commit point*: a record is committed iff the manifest names it.
//
//   - Crash after the segment append but before the manifest rename leaves
//     an orphan record; Open() truncates it away (torn_records_dropped) and
//     the log recovers to the last committed version — never a torn one.
//   - A corrupt or missing manifest is quarantined (MANIFEST.corrupt) and
//     rebuilt best-effort from the CRC-verified segment records.
//   - OpenAt(version) gives point-in-time rollback; OpenLatest() + a
//     TreeStore publish hook (WarmStart) gives cross-process warm start.
//   - RecordBytes()/InstallRecord() are the replication unit: a framed
//     record is self-describing (version, parent, CRC) so a replica can
//     verify lineage and integrity before installing. See store/replica.h.
//
// All methods are thread-safe behind one internal mutex; reads served off
// the in-memory entry table only touch disk to load payload bytes.

#ifndef OCT_STORE_VERSION_LOG_H_
#define OCT_STORE_VERSION_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/category_tree.h"
#include "serve/tree_snapshot.h"
#include "util/status.h"

namespace oct {
namespace serve {
class TreeStore;
}  // namespace serve

namespace store {

using serve::TreeVersion;

struct VersionLogOptions {
  /// Roll to a fresh segment once the active one exceeds this many bytes.
  size_t segment_bytes = 4u << 20;
  /// Compact() keeps this many newest records (min 1).
  size_t compact_keep = 8;
};

/// One committed record in the manifest, oldest first.
struct LogEntry {
  TreeVersion version = 0;
  /// Version this record was derived from; 0 for a lineage seed.
  TreeVersion parent = 0;
  /// Segment file index ("seg-%06u.log") holding the record.
  uint32_t segment = 0;
  /// Byte offset / length of the full framed record within the segment.
  uint64_t offset = 0;
  uint64_t bytes = 0;
  /// CRC32 of the record payload (the nested-set document).
  uint32_t payload_crc = 0;
  std::string note;
};

/// What Open() found (and repaired) on disk.
struct OpenReport {
  size_t segments_scanned = 0;
  size_t entries = 0;
  TreeVersion latest_version = 0;
  /// Appended-but-uncommitted (or torn) record bytes truncated away.
  size_t torn_records_dropped = 0;
  /// Records dropped because their CRC or lineage did not verify during a
  /// manifest rebuild.
  size_t records_quarantined = 0;
  /// True when MANIFEST was missing/corrupt and rebuilt from segments.
  bool manifest_rebuilt = false;
};

class VersionLog {
 public:
  /// Opens (creating if needed) the log in `dir`, repairing torn state as
  /// described in the file comment. Fails only when the directory is
  /// unusable or a manifest rebuild finds irreconcilable segments.
  static Result<std::unique_ptr<VersionLog>> Open(
      const std::string& dir, const VersionLogOptions& options = {});

  VersionLog(const VersionLog&) = delete;
  VersionLog& operator=(const VersionLog&) = delete;

  /// Appends `tree` as `version` (must exceed the latest committed version;
  /// parent is the latest committed version, 0 for the first record) and
  /// commits the manifest. On any error the log is unchanged up to the
  /// commit point.
  Status Commit(const CategoryTree& tree, TreeVersion version,
                const std::string& note = "");

  /// Point-in-time read: decodes the committed record for `version`.
  Result<CategoryTree> OpenAt(TreeVersion version) const;

  /// Decodes the latest committed record. NotFound on an empty log.
  Result<CategoryTree> OpenLatest() const;

  /// Latest committed version; 0 when empty.
  TreeVersion LatestVersion() const;

  /// Committed lineage, oldest first.
  std::vector<LogEntry> Lineage() const;

  /// Note recorded with the latest committed record ("" when empty).
  std::string LatestNote() const;

  /// Drops all but the newest `compact_keep` records, rewriting them into a
  /// fresh segment and deleting the old segment files.
  Status Compact();

  /// The framed record bytes for `version` — the replication ship unit.
  Result<std::string> RecordBytes(TreeVersion version) const;

  /// Verifies a framed record (CRC + lineage) and commits it verbatim.
  /// Rules, given the local latest version L:
  ///   - record.version <= L with identical payload CRC: OK (idempotent);
  ///     with a different CRC: DataLoss (divergent lineage).
  ///   - record.parent == L (or the log is empty): install, commit.
  ///   - record.parent  > L: OutOfRange — the caller is lagging and must
  ///     fetch the missing parents first.
  ///   - otherwise: DataLoss — the sender's lineage diverged from ours.
  Status InstallRecord(const std::string& record_bytes);

  const OpenReport& open_report() const { return open_report_; }
  const std::string& dir() const { return dir_; }
  const VersionLogOptions& options() const { return options_; }

 private:
  VersionLog(std::string dir, VersionLogOptions options);

  Status OpenLocked();
  Status CommitFramedLocked(const std::string& frame, TreeVersion version,
                            TreeVersion parent, uint32_t payload_crc,
                            uint64_t payload_bytes, const std::string& note);
  Status WriteManifestLocked();
  Result<std::string> RecordBytesLocked(TreeVersion version) const;
  const LogEntry* FindEntryLocked(TreeVersion version) const;

  const std::string dir_;
  const VersionLogOptions options_;
  mutable std::mutex mu_;
  std::vector<LogEntry> entries_;  // Oldest first.
  uint32_t active_segment_ = 1;
  uint64_t active_segment_bytes_ = 0;
  OpenReport open_report_;
};

/// Result of WarmStart().
struct WarmStartReport {
  /// Latest committed version in the log (0 when the log was empty).
  TreeVersion log_version = 0;
  /// Version the recovered tree was republished as in the TreeStore
  /// (0 when the log was empty and nothing was published).
  TreeVersion published_version = 0;
  size_t log_entries = 0;
};

/// Cross-process warm start: republishes the log's latest tree into
/// `tree_store` (when the log is non-empty), then installs a publish hook so
/// every future TreeStore publish — including DeltaMaintainer republishes —
/// commits to `log` under a monotonically increasing log version. The hook
/// holds raw pointers: `log` must outlive `tree_store`'s last publish.
Result<WarmStartReport> WarmStart(VersionLog* log,
                                  serve::TreeStore* tree_store);

}  // namespace store
}  // namespace oct

#endif  // OCT_STORE_VERSION_LOG_H_
