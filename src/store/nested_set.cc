#include "store/nested_set.h"

#include <algorithm>
#include <cstdio>

#include "core/serialization.h"

namespace oct {
namespace store {

namespace {

constexpr char kNestedMagic[] = "octstore-nested v1";

/// Splits a line into space-separated tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Result<uint64_t> ParseUint(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer: " + s);
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

NestedSetEncoding EncodeNestedSet(const CategoryTree& tree) {
  // PreOrder() walks alive nodes only, so tombstones drop for free, and
  // renumbering into pre-order makes every subtree a contiguous id range —
  // CategoryTree ids follow insertion order, which interleaves subtrees.
  // Pre-order is also the canonical numbering SerializeTree uses.
  const std::vector<NodeId> preorder = tree.PreOrder();
  const size_t n = preorder.size();
  std::vector<NodeId> to_pre(tree.num_nodes(), kInvalidNode);
  for (NodeId pre = 0; pre < n; ++pre) to_pre[preorder[pre]] = pre;

  NestedSetEncoding enc;
  enc.lft.assign(n, 0);
  enc.rgt.assign(n, 0);
  enc.depth.assign(n, 0);
  enc.parent.assign(n, kInvalidNode);
  enc.source_set.assign(n, kInvalidSet);
  enc.label.resize(n);
  enc.item_offsets.assign(n + 1, 0);

  // Iterative DFS with an explicit "exit" marker to assign rgt counters in
  // the classic 1..2n numbering.
  uint32_t counter = 0;
  struct Frame {
    NodeId node;  // Old (compacted) id.
    bool exit;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), false});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const NodeId pre = to_pre[frame.node];
    if (frame.exit) {
      enc.rgt[pre] = ++counter;
      continue;
    }
    const CategoryNode& node = tree.node(frame.node);
    enc.lft[pre] = ++counter;
    enc.parent[pre] =
        node.parent == kInvalidNode ? kInvalidNode : to_pre[node.parent];
    enc.depth[pre] = node.parent == kInvalidNode
                         ? 0
                         : enc.depth[to_pre[node.parent]] + 1;
    enc.source_set[pre] = node.source_set;
    enc.label[pre] = node.label;
    stack.push_back({frame.node, true});
    // Push children reversed so they pop in declaration order.
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }

  // Direct items as CSR in the same pre-order (ItemSet iterates ascending).
  for (NodeId pre = 0; pre < n; ++pre) {
    enc.item_offsets[pre + 1] =
        enc.item_offsets[pre] +
        static_cast<uint32_t>(tree.node(preorder[pre]).direct_items.size());
  }
  enc.items.reserve(enc.item_offsets[n]);
  for (NodeId pre = 0; pre < n; ++pre) {
    for (ItemId item : tree.node(preorder[pre]).direct_items) {
      enc.items.push_back(item);
    }
  }
  return enc;
}

Status ValidateNestedSet(const NestedSetEncoding& enc) {
  const size_t n = enc.num_nodes();
  if (n == 0) return Status::DataLoss("nested-set encoding has no root");
  if (enc.rgt.size() != n || enc.depth.size() != n || enc.parent.size() != n ||
      enc.source_set.size() != n || enc.label.size() != n ||
      enc.item_offsets.size() != n + 1) {
    return Status::DataLoss("nested-set arrays disagree on node count");
  }
  if (enc.parent[0] != kInvalidNode || enc.lft[0] != 1 ||
      enc.rgt[0] != 2 * n || enc.depth[0] != 0) {
    return Status::DataLoss("nested-set root interval is not [1, 2n]");
  }
  for (NodeId id = 1; id < n; ++id) {
    const NodeId p = enc.parent[id];
    if (p >= id) {
      return Status::DataLoss("nested-set parent not earlier in pre-order");
    }
    if (enc.lft[id] <= enc.lft[id - 1]) {
      return Status::DataLoss("nested-set lft not in pre-order");
    }
    // rgt - lft = 2*size - 1 is always odd and at least 1 (a leaf).
    if (enc.rgt[id] <= enc.lft[id] ||
        (enc.rgt[id] - enc.lft[id]) % 2 == 0) {
      return Status::DataLoss("nested-set interval width invalid");
    }
    if (!(enc.lft[p] < enc.lft[id] && enc.rgt[id] < enc.rgt[p])) {
      return Status::DataLoss("nested-set child interval escapes parent");
    }
    if (enc.depth[id] != enc.depth[p] + 1) {
      return Status::DataLoss("nested-set depth disagrees with parent");
    }
    const auto [first, last] = enc.SubtreeSpan(id);
    if (first != id || last > n) {
      return Status::DataLoss("nested-set subtree span out of range");
    }
  }
  if (enc.item_offsets[0] != 0 ||
      enc.item_offsets[n] != enc.items.size()) {
    return Status::DataLoss("nested-set item CSR bounds invalid");
  }
  for (NodeId id = 0; id < n; ++id) {
    if (enc.item_offsets[id] > enc.item_offsets[id + 1]) {
      return Status::DataLoss("nested-set item CSR not monotone");
    }
  }
  return Status::OK();
}

Result<CategoryTree> DecodeNestedSet(const NestedSetEncoding& enc) {
  OCT_RETURN_NOT_OK(ValidateNestedSet(enc));
  CategoryTree tree;
  tree.mutable_node(0).label = enc.label[0];
  tree.mutable_node(0).source_set = enc.source_set[0];
  for (NodeId id = 1; id < enc.num_nodes(); ++id) {
    // Parents precede children in pre-order, so AddCategory ids line up
    // with encoding ids exactly.
    const NodeId added =
        tree.AddCategory(enc.parent[id], enc.label[id], enc.source_set[id]);
    if (added != id) {
      return Status::DataLoss("nested-set decode id drift");
    }
  }
  for (NodeId id = 0; id < enc.num_nodes(); ++id) {
    for (uint32_t k = enc.item_offsets[id]; k < enc.item_offsets[id + 1];
         ++k) {
      tree.AssignItem(id, enc.items[k]);
    }
  }
  OCT_RETURN_NOT_OK(tree.ValidateStructure());
  return tree;
}

std::string SerializeNestedSet(const NestedSetEncoding& enc) {
  std::string out(kNestedMagic);
  out += "\nnodes " + std::to_string(enc.num_nodes()) + " items " +
         std::to_string(enc.items.size()) + "\n";
  for (NodeId id = 0; id < enc.num_nodes(); ++id) {
    out += "n " + std::to_string(enc.lft[id]) + " " +
           std::to_string(enc.rgt[id]) + " " + std::to_string(enc.depth[id]);
    out += enc.parent[id] == kInvalidNode
               ? " -"
               : " " + std::to_string(enc.parent[id]);
    out += enc.source_set[id] == kInvalidSet
               ? " -"
               : " " + std::to_string(enc.source_set[id]);
    out += " " + EscapeLabel(enc.label[id]) + " :";
    for (uint32_t k = enc.item_offsets[id]; k < enc.item_offsets[id + 1];
         ++k) {
      out += " " + std::to_string(enc.items[k]);
    }
    out += "\n";
  }
  return out;
}

Result<NestedSetEncoding> ParseNestedSet(const std::string& text) {
  size_t pos = 0;
  auto next_line = [&](std::string* line) -> bool {
    if (pos >= text.size()) return false;
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      line->assign(text, pos, text.size() - pos);
      pos = text.size();
    } else {
      line->assign(text, pos, eol - pos);
      pos = eol + 1;
    }
    return true;
  };

  std::string line;
  if (!next_line(&line) || line != kNestedMagic) {
    return Status::DataLoss("bad nested-set magic");
  }
  if (!next_line(&line)) {
    return Status::DataLoss("bad nested-set header line");
  }
  const std::vector<std::string> header = Tokens(line);
  if (header.size() != 4 || header[0] != "nodes" || header[2] != "items") {
    return Status::DataLoss("bad nested-set header line");
  }
  OCT_ASSIGN_OR_RETURN(const uint64_t nodes, ParseUint(header[1]));
  OCT_ASSIGN_OR_RETURN(const uint64_t items, ParseUint(header[3]));
  NestedSetEncoding enc;
  enc.lft.reserve(nodes);
  enc.rgt.reserve(nodes);
  enc.depth.reserve(nodes);
  enc.parent.reserve(nodes);
  enc.source_set.reserve(nodes);
  enc.label.reserve(nodes);
  enc.item_offsets.reserve(nodes + 1);
  enc.item_offsets.push_back(0);
  enc.items.reserve(items);

  for (uint64_t i = 0; i < nodes; ++i) {
    if (!next_line(&line)) {
      return Status::DataLoss("nested-set truncated at node " +
                              std::to_string(i));
    }
    const std::vector<std::string> tok = Tokens(line);
    // n lft rgt depth parent source label : items...
    if (tok.size() < 8 || tok[0] != "n" || tok[7] != ":") {
      return Status::DataLoss("bad nested-set node line: " + line);
    }
    OCT_ASSIGN_OR_RETURN(const uint64_t lft, ParseUint(tok[1]));
    OCT_ASSIGN_OR_RETURN(const uint64_t rgt, ParseUint(tok[2]));
    OCT_ASSIGN_OR_RETURN(const uint64_t depth, ParseUint(tok[3]));
    enc.lft.push_back(static_cast<uint32_t>(lft));
    enc.rgt.push_back(static_cast<uint32_t>(rgt));
    enc.depth.push_back(static_cast<uint32_t>(depth));
    if (tok[4] == "-") {
      enc.parent.push_back(kInvalidNode);
    } else {
      OCT_ASSIGN_OR_RETURN(const uint64_t parent, ParseUint(tok[4]));
      enc.parent.push_back(static_cast<NodeId>(parent));
    }
    if (tok[5] == "-") {
      enc.source_set.push_back(kInvalidSet);
    } else {
      OCT_ASSIGN_OR_RETURN(const uint64_t source, ParseUint(tok[5]));
      enc.source_set.push_back(static_cast<SetId>(source));
    }
    enc.label.push_back(UnescapeLabel(tok[6]));
    for (size_t k = 8; k < tok.size(); ++k) {
      OCT_ASSIGN_OR_RETURN(const uint64_t item, ParseUint(tok[k]));
      enc.items.push_back(static_cast<ItemId>(item));
    }
    enc.item_offsets.push_back(static_cast<uint32_t>(enc.items.size()));
  }
  if (enc.items.size() != items) {
    return Status::DataLoss("nested-set item count disagrees with header");
  }
  OCT_RETURN_NOT_OK(ValidateNestedSet(enc));
  return enc;
}

}  // namespace store
}  // namespace oct
