// Nested-set (lft/rgt) encoding of a CategoryTree — the classic interval
// scheme relational taxonomies use (every node carries an interval
// [lft, rgt] that strictly contains the intervals of its descendants), laid
// out in pre-order so it doubles as the on-disk payload of the version log:
//
//   - pre-order position == compact NodeId == ascending-lft order, so the
//     subtree of node n is the *contiguous* id range [n, n + size(n)) and a
//     subtree read is one range scan — no pointer chasing, directly usable
//     by the router's root->leaf descent on a cold, just-parsed snapshot;
//   - size(n) falls out of the interval: rgt - lft = 2*size - 1, so
//     SubtreeSpan / SubtreeItemCount / IsAncestor are all O(1);
//   - direct items live in one CSR block in the same pre-order, so a
//     subtree's full item list is one contiguous slice.
//
// Encode/Decode round-trips exactly (modulo tombstones, which Encode skips
// like every serving path does): DecodeNestedSet(EncodeNestedSet(t))
// serializes identically to t via SerializeTree. Serialize/Parse is the
// version-log payload format ("octstore-nested v1").

#ifndef OCT_STORE_NESTED_SET_H_
#define OCT_STORE_NESTED_SET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/category_tree.h"
#include "util/status.h"

namespace oct {
namespace store {

/// A CategoryTree flattened into pre-order nested-set arrays. Index i in
/// every array is the compact NodeId of the i-th node in pre-order (the
/// root is 0).
struct NestedSetEncoding {
  /// Classic nested-set interval bounds, 1-based: lft[n] < lft[d] and
  /// rgt[d] < rgt[n] for every descendant d of n.
  std::vector<uint32_t> lft;
  std::vector<uint32_t> rgt;
  /// Edges from the root (root depth 0).
  std::vector<uint32_t> depth;
  /// Parent id; kInvalidNode for the root.
  std::vector<NodeId> parent;
  /// Candidate set each category was created for; kInvalidSet when none.
  std::vector<SetId> source_set;
  std::vector<std::string> label;
  /// Direct items in CSR layout: node n's direct items are
  /// items[item_offsets[n] .. item_offsets[n + 1]), ascending per node.
  std::vector<uint32_t> item_offsets;
  std::vector<ItemId> items;

  size_t num_nodes() const { return lft.size(); }
  size_t num_direct_items() const { return items.size(); }

  /// Nodes of the subtree rooted at `n`, as the contiguous id range
  /// [first, last). O(1): pre-order layout makes subtrees contiguous and
  /// the interval width encodes the subtree size.
  std::pair<NodeId, NodeId> SubtreeSpan(NodeId n) const {
    const uint32_t size = (rgt[n] - lft[n] + 1) / 2;
    return {n, n + size};
  }

  /// Full item count of `n`'s subtree (direct items of n plus all
  /// descendants). O(1) via the CSR prefix sums over the subtree span.
  size_t SubtreeItemCount(NodeId n) const {
    const auto [first, last] = SubtreeSpan(n);
    return item_offsets[last] - item_offsets[first];
  }

  /// True when `a` is a proper ancestor of `b`. O(1) interval containment.
  bool IsAncestor(NodeId a, NodeId b) const {
    return lft[a] < lft[b] && rgt[b] < rgt[a];
  }
};

/// Flattens `tree` (alive nodes only; ids compacted exactly like
/// SerializeTree / TreeSnapshot do) into nested-set arrays.
NestedSetEncoding EncodeNestedSet(const CategoryTree& tree);

/// Rebuilds the CategoryTree an encoding came from. The result serializes
/// identically to the (compacted) original.
Result<CategoryTree> DecodeNestedSet(const NestedSetEncoding& encoding);

/// Structural validity: interval nesting, pre-order/lft agreement, parent
/// consistency, CSR monotonicity. Decode and the version log run this on
/// every parsed payload so a corrupt-but-CRC-valid record can never
/// install.
Status ValidateNestedSet(const NestedSetEncoding& encoding);

/// Renders the "octstore-nested v1" line format (the version-log payload):
///   octstore-nested v1
///   nodes <count> items <count>
///   n <lft> <rgt> <depth> <parent|-> <source_set|-> <label> : <item> ...
std::string SerializeNestedSet(const NestedSetEncoding& encoding);

/// Parses and validates an octstore-nested v1 document.
Result<NestedSetEncoding> ParseNestedSet(const std::string& text);

}  // namespace store
}  // namespace oct

#endif  // OCT_STORE_NESTED_SET_H_
