// Replication on top of the version log: a ReplicaSet ships every committed
// record from a primary VersionLog to N local read replicas, each of which
// verifies the record (CRC32 framing + version lineage) before installing
// it into its own log and publishing it to its own TreeStore. The ship unit
// is VersionLog::RecordBytes() — self-describing framed bytes — so the
// transport is pluggable: the default fetcher reads the primary log
// directly, and FetchRecordOverHttp() pulls the same bytes off the
// exposition server's /store/record endpoint (the "existing exposition
// transport" path used by the chaos round and the online_store example).
//
// Failover policy, exercised by bench/store_recovery and run_chaos.sh:
//   - A replica whose install hits a lineage *gap* (record parent newer
//     than its latest) is kLagging; the set catches it up by fetching the
//     missing parents in order.
//   - A replica whose install hits a lineage *divergence* (same version,
//     different payload, or a parent behind its head) is kQuarantined: it
//     stops taking ships until ReSeed() wipes it and re-copies the primary
//     lineage.
//   - When the primary dies, PromoteBest() picks the healthy replica with
//     the highest committed version; its TreeStore becomes the serving
//     store and writers redirect to its log (see the failover drill in
//     bench/store_recovery).

#ifndef OCT_STORE_REPLICA_H_
#define OCT_STORE_REPLICA_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/tree_store.h"
#include "store/version_log.h"
#include "util/status.h"

namespace oct {
namespace store {

enum class ReplicaState {
  kHealthy = 0,
  /// Behind the primary; catch-up fetches are in order.
  kLagging,
  /// Lineage diverged; excluded from promotion until re-seeded.
  kQuarantined,
};

const char* ReplicaStateName(ReplicaState state);

/// One read replica: its own VersionLog directory plus a TreeStore serving
/// whatever it has installed. Thread-safe.
class Replica {
 public:
  /// Opens (or re-opens) the replica log in `dir`. `retain` sizes the
  /// replica's TreeStore history.
  static Result<std::unique_ptr<Replica>> Open(std::string name,
                                               std::string dir,
                                               size_t retain = 4);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Verifies and installs one framed record, publishing the decoded tree
  /// to the replica's TreeStore on success. State transitions:
  /// OK → kHealthy; OutOfRange (gap) → kLagging; DataLoss → kQuarantined.
  /// A quarantined replica rejects installs with FailedPrecondition until
  /// re-seeded.
  Status Install(const std::string& record_bytes);

  /// Wipes the replica directory and re-installs `records` (the primary's
  /// full lineage, oldest first). Restores kHealthy on success.
  Status ReSeed(const std::vector<std::string>& records);

  ReplicaState state() const;
  /// Latest version committed in the replica's own log.
  TreeVersion LatestVersion() const;

  const std::string& name() const { return name_; }
  const std::string& dir() const { return dir_; }
  /// The replica's serving store (what a promotion redirects readers to).
  serve::TreeStore* tree_store() { return &tree_store_; }
  const VersionLog* log() const { return log_.get(); }

 private:
  Replica(std::string name, std::string dir, size_t retain);

  const std::string name_;
  const std::string dir_;
  mutable std::mutex mu_;  // Guards log_ (swapped by ReSeed) and state_.
  std::unique_ptr<VersionLog> log_;
  ReplicaState state_ = ReplicaState::kHealthy;
  serve::TreeStore tree_store_;
};

/// Pulls the framed record bytes for `version` from somewhere — the
/// replication transport. Used for replica catch-up and re-seeding.
using RecordFetcher = std::function<Result<std::string>(TreeVersion)>;

/// Fetches a record off an exposition server's /store/record?version=N
/// endpoint on 127.0.0.1:`port` (see serve::ServingExposition).
Result<std::string> FetchRecordOverHttp(int port, TreeVersion version,
                                        double timeout_seconds = 5.0);

/// Snapshot of one replica's health for /statusz and the failover drill.
struct ReplicaStatus {
  std::string name;
  ReplicaState state = ReplicaState::kHealthy;
  TreeVersion version = 0;
  /// Versions behind the primary (0 when caught up or ahead post-failover).
  uint64_t lag = 0;
};

/// Ships committed records from `primary` to the registered replicas and
/// implements the failover policy. Thread-safe; ships run on the caller's
/// thread (typically right after a VersionLog commit).
class ReplicaSet {
 public:
  /// `primary` must outlive the set. The default fetcher reads records
  /// straight from `primary`; SetFetcher() swaps in a remote transport.
  explicit ReplicaSet(const VersionLog* primary);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  void SetFetcher(RecordFetcher fetcher);

  /// Registers a replica (the set owns it).
  Replica* AddReplica(std::unique_ptr<Replica> replica);

  /// Ships the committed record `version` to every replica, driving
  /// catch-up for laggers and quarantining divergent lineages. Returns the
  /// first hard error (individual replica failures degrade that replica's
  /// state but do not fail the ship).
  Status ShipCommitted(TreeVersion version);

  /// Brings every non-quarantined replica up to the primary's latest
  /// committed version.
  Status SyncAll();

  /// Re-seeds every quarantined replica from the primary lineage.
  Status ReSeedQuarantined();

  /// Failover: the non-quarantined replica with the highest committed
  /// version. NotFound when every replica is quarantined (or none exist).
  Result<Replica*> PromoteBest();

  std::vector<ReplicaStatus> Statuses() const;

  size_t num_replicas() const;
  Replica* replica(size_t i);

 private:
  /// Installs `version` into `replica`, fetching missing parents on a
  /// lineage gap. Updates repl.* metrics.
  Status InstallWithCatchUp(Replica* replica, TreeVersion version);

  const VersionLog* const primary_;
  mutable std::mutex mu_;  // Guards replicas_ and fetcher_.
  RecordFetcher fetcher_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace store
}  // namespace oct

#endif  // OCT_STORE_REPLICA_H_
