#include "store/version_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "core/serialization.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/tree_store.h"
#include "store/nested_set.h"
#include "util/crc32.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace oct {
namespace store {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[] = "octstore-segment v1\n";
constexpr char kManifestMagic[] = "octstore-manifest v1";
constexpr char kManifestName[] = "MANIFEST";

obs::Counter* StoreCounter(const char* name) {
  return obs::MetricsRegistry::Default()->GetCounter(name);
}

/// Flushes `path` (file data, or directory entries) to stable storage.
void SyncPath(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Appends `data` to `path` (creating it), then fsyncs. Append + fsync is
/// the segment write path; the manifest rename is what commits.
Status AppendToFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("cannot open segment for append: " + path);
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
  if (written != data.size() || !flushed) {
    return Status::Internal("short append to segment " + path);
  }
  return Status::OK();
}

std::string SegmentFileName(uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06u.log", index);
  return buf;
}

/// One framed record as parsed out of a segment (or a shipped byte string).
struct Frame {
  TreeVersion version = 0;
  TreeVersion parent = 0;
  uint32_t payload_crc = 0;
  std::string note;
  /// Offsets within the buffer the frame was parsed from.
  size_t payload_offset = 0;
  size_t payload_bytes = 0;
  size_t total_bytes = 0;  // Header line + newline + payload.
};

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Result<uint64_t> ParseUint(const std::string& s, int base = 10) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (end == s.c_str() || *end != '\0') {
    return Status::DataLoss("bad integer: " + s);
  }
  return static_cast<uint64_t>(v);
}

/// Renders the framed record: header line + nested-set payload.
std::string FrameRecord(TreeVersion version, TreeVersion parent,
                        const std::string& note, const std::string& payload) {
  char header[192];
  std::snprintf(header, sizeof(header),
                "record %" PRIu64 " %" PRIu64 " %zu %08x %s\n",
                static_cast<uint64_t>(version), static_cast<uint64_t>(parent),
                payload.size(), Crc32(payload), EscapeLabel(note).c_str());
  return std::string(header) + payload;
}

/// Parses (and CRC-verifies) one frame starting at `pos` in `buf`. Any
/// malformation — including a payload running past the buffer — is
/// kDataLoss so callers treat it as a torn tail.
Result<Frame> ParseFrameAt(const std::string& buf, size_t pos) {
  const size_t eol = buf.find('\n', pos);
  if (eol == std::string::npos) {
    return Status::DataLoss("record header truncated");
  }
  const std::vector<std::string> tok = Tokens(buf.substr(pos, eol - pos));
  if (tok.size() != 6 || tok[0] != "record") {
    return Status::DataLoss("bad record header");
  }
  Frame frame;
  OCT_ASSIGN_OR_RETURN(const uint64_t version, ParseUint(tok[1]));
  OCT_ASSIGN_OR_RETURN(const uint64_t parent, ParseUint(tok[2]));
  OCT_ASSIGN_OR_RETURN(const uint64_t bytes, ParseUint(tok[3]));
  OCT_ASSIGN_OR_RETURN(const uint64_t crc, ParseUint(tok[4], 16));
  frame.version = version;
  frame.parent = parent;
  frame.payload_crc = static_cast<uint32_t>(crc);
  frame.note = UnescapeLabel(tok[5]);
  frame.payload_offset = eol + 1;
  frame.payload_bytes = bytes;
  frame.total_bytes = (eol + 1 - pos) + bytes;
  if (frame.payload_offset + frame.payload_bytes > buf.size()) {
    return Status::DataLoss("record payload truncated");
  }
  if (Crc32(buf.data() + frame.payload_offset, frame.payload_bytes) !=
      frame.payload_crc) {
    return Status::DataLoss("record payload checksum mismatch");
  }
  return frame;
}

std::string RenderManifest(const std::vector<LogEntry>& entries) {
  std::string body(kManifestMagic);
  body += "\nentries " + std::to_string(entries.size()) + "\n";
  for (const LogEntry& e : entries) {
    char line[224];
    std::snprintf(line, sizeof(line),
                  "entry %" PRIu64 " %" PRIu64 " %u %" PRIu64 " %" PRIu64
                  " %08x %s\n",
                  static_cast<uint64_t>(e.version),
                  static_cast<uint64_t>(e.parent), e.segment, e.offset,
                  e.bytes, e.payload_crc, EscapeLabel(e.note).c_str());
    body += line;
  }
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n", Crc32(body));
  return body + crc_line;
}

Result<std::vector<LogEntry>> ParseManifest(const std::string& text) {
  // The trailing "crc <hex>\n" line covers every byte before it.
  if (text.empty() || text.back() != '\n') {
    return Status::DataLoss("manifest not newline-terminated");
  }
  const size_t crc_line_start = text.rfind("crc ", text.size() - 1);
  if (crc_line_start == std::string::npos ||
      (crc_line_start != 0 && text[crc_line_start - 1] != '\n')) {
    return Status::DataLoss("manifest missing crc trailer");
  }
  const std::string crc_tok =
      text.substr(crc_line_start + 4, text.size() - crc_line_start - 5);
  OCT_ASSIGN_OR_RETURN(const uint64_t expected, ParseUint(crc_tok, 16));
  if (Crc32(text.data(), crc_line_start) != expected) {
    return Status::DataLoss("manifest checksum mismatch");
  }

  size_t pos = 0;
  auto next_line = [&](std::string* line) -> bool {
    if (pos >= crc_line_start) return false;
    const size_t eol = text.find('\n', pos);
    line->assign(text, pos, eol - pos);
    pos = eol + 1;
    return true;
  };
  std::string line;
  if (!next_line(&line) || line != kManifestMagic) {
    return Status::DataLoss("bad manifest magic");
  }
  if (!next_line(&line)) return Status::DataLoss("manifest missing header");
  const std::vector<std::string> header = Tokens(line);
  if (header.size() != 2 || header[0] != "entries") {
    return Status::DataLoss("bad manifest header");
  }
  OCT_ASSIGN_OR_RETURN(const uint64_t count, ParseUint(header[1]));
  std::vector<LogEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!next_line(&line)) return Status::DataLoss("manifest truncated");
    const std::vector<std::string> tok = Tokens(line);
    if (tok.size() != 8 || tok[0] != "entry") {
      return Status::DataLoss("bad manifest entry: " + line);
    }
    LogEntry e;
    OCT_ASSIGN_OR_RETURN(const uint64_t version, ParseUint(tok[1]));
    OCT_ASSIGN_OR_RETURN(const uint64_t parent, ParseUint(tok[2]));
    OCT_ASSIGN_OR_RETURN(const uint64_t segment, ParseUint(tok[3]));
    OCT_ASSIGN_OR_RETURN(const uint64_t offset, ParseUint(tok[4]));
    OCT_ASSIGN_OR_RETURN(const uint64_t bytes, ParseUint(tok[5]));
    OCT_ASSIGN_OR_RETURN(const uint64_t crc, ParseUint(tok[6], 16));
    e.version = version;
    e.parent = parent;
    e.segment = static_cast<uint32_t>(segment);
    e.offset = offset;
    e.bytes = bytes;
    e.payload_crc = static_cast<uint32_t>(crc);
    e.note = UnescapeLabel(tok[7]);
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

VersionLog::VersionLog(std::string dir, VersionLogOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<VersionLog>> VersionLog::Open(
    const std::string& dir, const VersionLogOptions& options) {
  OCT_SPAN("store/open_log");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create log dir " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<VersionLog> log(new VersionLog(dir, options));
  {
    std::lock_guard<std::mutex> lock(log->mu_);
    OCT_RETURN_NOT_OK(log->OpenLocked());
  }
  return log;
}

Status VersionLog::OpenLocked() {
  // The manifest, when it parses and checksums, is the authority: exactly
  // the records it names are committed, each re-verified in place (framing,
  // payload CRC, lineage fields) before the log trusts it. Trailing bytes
  // beyond the last committed record — appended by a writer that died
  // before the manifest rename — are truncated away, and segments newer
  // than the last committed one are deleted outright. A missing or corrupt
  // manifest degrades to best-effort: quarantine it and accept the longest
  // CRC-verified lineage a sequential segment scan yields.
  bool have_manifest = false;
  std::vector<LogEntry> manifest_entries;
  const std::string manifest_path = (fs::path(dir_) / kManifestName).string();
  if (fs::exists(manifest_path)) {
    auto contents = ReadFile(manifest_path);
    Result<std::vector<LogEntry>> parsed =
        contents.ok() ? ParseManifest(contents.value())
                      : Result<std::vector<LogEntry>>(contents.status());
    if (parsed.ok()) {
      have_manifest = true;
      manifest_entries = std::move(parsed).value();
    } else {
      OCT_LOG_WARNING << "quarantining corrupt manifest " << manifest_path
                      << ": " << parsed.status().ToString();
      std::error_code ec;
      fs::rename(manifest_path, manifest_path + std::string(".corrupt"), ec);
      open_report_.manifest_rebuilt = true;
    }
  }

  // Collect segment files, ascending index.
  std::vector<std::pair<uint32_t, std::string>> segments;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string fname = it->path().filename().string();
    unsigned index = 0;
    char trailing = '\0';
    if (std::sscanf(fname.c_str(), "seg-%u.log%c", &index, &trailing) == 1) {
      segments.emplace_back(index, it->path().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot scan log dir " + dir_ + ": " +
                            ec.message());
  }
  std::sort(segments.begin(), segments.end());
  open_report_.segments_scanned = segments.size();
  if (!have_manifest && !segments.empty()) {
    open_report_.manifest_rebuilt = true;
  }

  const size_t magic_len = sizeof(kSegmentMagic) - 1;
  bool dirty = open_report_.manifest_rebuilt;
  entries_.clear();

  // Segment contents, loaded on demand (missing/bad-magic files load as
  // empty and fail every entry check).
  std::map<uint32_t, std::string> cache;
  auto segment_buf = [&](uint32_t index) -> const std::string& {
    auto it = cache.find(index);
    if (it != cache.end()) return it->second;
    std::string buf;
    for (const auto& [seg_index, path] : segments) {
      if (seg_index != index) continue;
      auto contents = ReadFile(path);
      if (contents.ok()) buf = std::move(contents).value();
      break;
    }
    if (buf.size() < magic_len ||
        buf.compare(0, magic_len, kSegmentMagic) != 0) {
      buf.clear();
    }
    return cache.emplace(index, std::move(buf)).first->second;
  };

  if (have_manifest) {
    // Accept the longest prefix of manifest entries whose on-disk records
    // verify; a chain break invalidates everything after it.
    for (const LogEntry& e : manifest_entries) {
      const std::string& buf = segment_buf(e.segment);
      bool ok = e.offset + e.bytes <= buf.size();
      if (ok) {
        auto frame = ParseFrameAt(buf, e.offset);
        ok = frame.ok() && frame.value().version == e.version &&
             frame.value().parent == e.parent &&
             frame.value().payload_crc == e.payload_crc &&
             frame.value().total_bytes == e.bytes;
      }
      const TreeVersion last = entries_.empty() ? 0 : entries_.back().version;
      if (!ok || (!entries_.empty() &&
                  (e.parent != last || e.version <= last))) {
        OCT_LOG_WARNING << "dropping manifest entry v" << e.version
                        << " and successors: record does not verify";
        open_report_.records_quarantined +=
            manifest_entries.size() - entries_.size();
        dirty = true;
        break;
      }
      entries_.push_back(e);
    }
  } else {
    // Rebuild: walk every segment in order, accept the CRC-verified chain.
    for (const auto& [index, path] : segments) {
      const std::string& buf = segment_buf(index);
      if (buf.empty() && fs::exists(path)) {
        OCT_LOG_WARNING << "quarantining segment with bad magic: " << path;
        std::error_code rename_ec;
        fs::rename(path, path + std::string(".corrupt"), rename_ec);
        ++open_report_.records_quarantined;
        dirty = true;
        continue;
      }
      size_t pos = magic_len;
      while (pos < buf.size()) {
        auto frame = ParseFrameAt(buf, pos);
        if (!frame.ok()) {
          // Torn tail (crash mid-append, or bit rot): drop the remainder.
          OCT_LOG_WARNING << "dropping torn tail of " << path << " at byte "
                          << pos << ": " << frame.status().ToString();
          ++open_report_.torn_records_dropped;
          dirty = true;
          break;
        }
        const Frame& f = frame.value();
        const TreeVersion last =
            entries_.empty() ? 0 : entries_.back().version;
        if (entries_.empty() || (f.parent == last && f.version > last)) {
          LogEntry e;
          e.version = f.version;
          e.parent = f.parent;
          e.segment = index;
          e.offset = pos;
          e.bytes = f.total_bytes;
          e.payload_crc = f.payload_crc;
          e.note = f.note;
          entries_.push_back(std::move(e));
        } else {
          OCT_LOG_WARNING << "dropping lineage-breaking record v" << f.version
                          << " (parent " << f.parent << ", have " << last
                          << ") in " << path;
          ++open_report_.records_quarantined;
          dirty = true;
        }
        pos += f.total_bytes;
      }
    }
  }

  // Truncate everything beyond the last committed record: trailing bytes of
  // its segment, and whole segments past it (uncommitted appends from a
  // writer that died before its manifest rename).
  const uint32_t last_segment = entries_.empty()
                                    ? (segments.empty() ? 1 : 1)
                                    : entries_.back().segment;
  uint64_t committed_end = magic_len;
  for (const LogEntry& e : entries_) {
    if (e.segment == last_segment) {
      committed_end = std::max(committed_end, e.offset + e.bytes);
    }
  }
  for (const auto& [index, path] : segments) {
    if (!fs::exists(path)) continue;
    if (index > last_segment || (entries_.empty() && index >= last_segment)) {
      std::error_code rm_ec;
      const uint64_t size = fs::file_size(path, rm_ec);
      if (!rm_ec && size > magic_len) ++open_report_.torn_records_dropped;
      fs::remove(path, rm_ec);
      dirty = true;
      continue;
    }
    if (index == last_segment) {
      std::error_code size_ec;
      const uint64_t size = fs::file_size(path, size_ec);
      if (!size_ec && size > committed_end) {
        ++open_report_.torn_records_dropped;
        std::error_code trunc_ec;
        fs::resize_file(path, committed_end, trunc_ec);
        if (trunc_ec) {
          return Status::Internal("cannot truncate torn segment " + path +
                                  ": " + trunc_ec.message());
        }
        SyncPath(path);
        dirty = true;
      }
    }
  }
  // Drop stale .tmp manifests from a crashed writer.
  {
    std::error_code rm_ec;
    fs::remove(manifest_path + std::string(".tmp"), rm_ec);
  }

  active_segment_ = last_segment;
  active_segment_bytes_ = 0;
  const std::string active_path =
      (fs::path(dir_) / SegmentFileName(active_segment_)).string();
  if (fs::exists(active_path)) {
    std::error_code size_ec;
    const uint64_t size = fs::file_size(active_path, size_ec);
    if (!size_ec) active_segment_bytes_ = size;
  }

  if (dirty) {
    OCT_RETURN_NOT_OK(WriteManifestLocked());
  }
  open_report_.entries = entries_.size();
  open_report_.latest_version =
      entries_.empty() ? 0 : entries_.back().version;
  return Status::OK();
}

Status VersionLog::WriteManifestLocked() {
  const std::string final_path = (fs::path(dir_) / kManifestName).string();
  const std::string tmp_path = final_path + ".tmp";
  OCT_RETURN_NOT_OK(WriteFile(tmp_path, RenderManifest(entries_)));
  SyncPath(tmp_path);
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("store.manifest.commit"));
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::Internal("cannot rename manifest into place: " +
                            ec.message());
  }
  SyncPath(dir_);  // The rename is the commit point; make it durable.
  return Status::OK();
}

Status VersionLog::CommitFramedLocked(const std::string& frame,
                                      TreeVersion version, TreeVersion parent,
                                      uint32_t payload_crc,
                                      uint64_t payload_bytes,
                                      const std::string& note) {
  static obs::Counter* rolled = StoreCounter("store.segments_rolled");
  // Roll once the active segment holds records and would overflow.
  const size_t magic_len = sizeof(kSegmentMagic) - 1;
  if (active_segment_bytes_ > magic_len &&
      active_segment_bytes_ + frame.size() > options_.segment_bytes) {
    ++active_segment_;
    active_segment_bytes_ = 0;
    rolled->Increment();
  }
  const std::string path =
      (fs::path(dir_) / SegmentFileName(active_segment_)).string();
  // Offset comes from the real file size, not the tracked counter: a prior
  // commit that appended its record but failed before the manifest rename
  // leaves orphan bytes on disk, and the next record must land after them.
  uint64_t file_size = 0;
  if (fs::exists(path)) {
    std::error_code size_ec;
    const uint64_t size = fs::file_size(path, size_ec);
    if (!size_ec) file_size = size;
  }
  std::string write = frame;
  if (file_size < magic_len) {
    // Nothing durable in the file yet (at most a torn magic): restart it.
    std::error_code rm_ec;
    if (file_size > 0) fs::remove(path, rm_ec);
    write = std::string(kSegmentMagic) + frame;
    file_size = 0;
  }
  const uint64_t offset = file_size == 0 ? magic_len : file_size;
  OCT_RETURN_NOT_OK(AppendToFile(path, write));
  active_segment_bytes_ = offset + frame.size();
  // Crash site between the durable segment append and the manifest commit:
  // dying here leaves an orphan record the next Open() truncates away.
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("store.commit"));
  LogEntry e;
  e.version = version;
  e.parent = parent;
  e.segment = active_segment_;
  e.offset = offset;
  e.bytes = frame.size();
  e.payload_crc = payload_crc;
  e.note = note;
  (void)payload_bytes;
  entries_.push_back(std::move(e));
  Status manifest = WriteManifestLocked();
  if (!manifest.ok()) {
    // The record is an uncommitted orphan; forget it (Open() would too).
    entries_.pop_back();
    return manifest;
  }
  active_segment_bytes_ = offset + frame.size();
  return Status::OK();
}

Status VersionLog::Commit(const CategoryTree& tree, TreeVersion version,
                          const std::string& note) {
  OCT_SPAN("store/commit");
  static obs::Counter* commits = StoreCounter("store.commits");
  static obs::Counter* failures = StoreCounter("store.commit_failures");
  static obs::Histogram* commit_us =
      obs::MetricsRegistry::Default()->GetHistogram(
          "store.commit_us", "version-log commit latency", "us");
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  auto fail = [&](Status s) {
    failures->Increment();
    return s;
  };
  Status armed = OCT_FAILPOINT("store.segment.append");
  if (!armed.ok()) return fail(std::move(armed));
  const TreeVersion latest = entries_.empty() ? 0 : entries_.back().version;
  if (version <= latest) {
    return fail(Status::InvalidArgument(
        "commit version " + std::to_string(version) +
        " not beyond latest " + std::to_string(latest)));
  }
  const std::string payload = SerializeNestedSet(EncodeNestedSet(tree));
  const std::string frame = FrameRecord(version, latest, note, payload);
  Status s = CommitFramedLocked(frame, version, latest, Crc32(payload),
                                payload.size(), note);
  if (!s.ok()) return fail(std::move(s));
  commits->Increment();
  commit_us->Record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  return Status::OK();
}

const LogEntry* VersionLog::FindEntryLocked(TreeVersion version) const {
  for (const LogEntry& e : entries_) {
    if (e.version == version) return &e;
  }
  return nullptr;
}

Result<std::string> VersionLog::RecordBytesLocked(TreeVersion version) const {
  OCT_RETURN_NOT_OK(OCT_FAILPOINT("store.record.read"));
  const LogEntry* entry = FindEntryLocked(version);
  if (entry == nullptr) {
    return Status::NotFound("version " + std::to_string(version) +
                            " not in log " + dir_);
  }
  const std::string path =
      (fs::path(dir_) / SegmentFileName(entry->segment)).string();
  OCT_ASSIGN_OR_RETURN(const std::string buf, ReadFile(path));
  if (entry->offset + entry->bytes > buf.size()) {
    return Status::DataLoss("segment shorter than manifest entry: " + path);
  }
  std::string record = buf.substr(entry->offset, entry->bytes);
  // Re-verify framing + payload CRC so bit rot since open cannot escape.
  OCT_ASSIGN_OR_RETURN(const Frame frame, ParseFrameAt(record, 0));
  if (frame.total_bytes != record.size() || frame.version != version) {
    return Status::DataLoss("record does not match manifest entry: " + path);
  }
  return record;
}

Result<std::string> VersionLog::RecordBytes(TreeVersion version) const {
  std::lock_guard<std::mutex> lock(mu_);
  return RecordBytesLocked(version);
}

Result<CategoryTree> VersionLog::OpenAt(TreeVersion version) const {
  OCT_SPAN("store/open_at");
  OCT_ASSIGN_OR_RETURN(const std::string record, RecordBytes(version));
  const Frame frame = ParseFrameAt(record, 0).value();  // Verified above.
  OCT_ASSIGN_OR_RETURN(
      const NestedSetEncoding enc,
      ParseNestedSet(record.substr(frame.payload_offset,
                                   frame.payload_bytes)));
  return DecodeNestedSet(enc);
}

Result<CategoryTree> VersionLog::OpenLatest() const {
  const TreeVersion latest = LatestVersion();
  if (latest == 0) {
    return Status::NotFound("version log " + dir_ + " is empty");
  }
  return OpenAt(latest);
}

TreeVersion VersionLog::LatestVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? 0 : entries_.back().version;
}

std::string VersionLog::LatestNote() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? std::string() : entries_.back().note;
}

std::vector<LogEntry> VersionLog::Lineage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

Status VersionLog::InstallRecord(const std::string& record_bytes) {
  OCT_SPAN("store/install_record");
  std::lock_guard<std::mutex> lock(mu_);
  OCT_ASSIGN_OR_RETURN(const Frame frame, ParseFrameAt(record_bytes, 0));
  if (frame.total_bytes != record_bytes.size()) {
    return Status::DataLoss("record carries trailing bytes");
  }
  // Structural verification before anything touches disk: a corrupt-but-
  // CRC-valid payload must never install.
  OCT_ASSIGN_OR_RETURN(
      const NestedSetEncoding enc,
      ParseNestedSet(record_bytes.substr(frame.payload_offset,
                                         frame.payload_bytes)));
  (void)enc;
  const TreeVersion latest = entries_.empty() ? 0 : entries_.back().version;
  if (frame.version <= latest) {
    const LogEntry* existing = FindEntryLocked(frame.version);
    if (existing != nullptr && existing->payload_crc == frame.payload_crc &&
        existing->parent == frame.parent) {
      return Status::OK();  // Idempotent re-ship.
    }
    return Status::DataLoss(
        "lineage divergence at v" + std::to_string(frame.version) +
        (existing != nullptr ? " (payload differs)" : " (version compacted)"));
  }
  if (!entries_.empty() && frame.parent != latest) {
    if (frame.parent > latest) {
      return Status::OutOfRange("lagging: record v" +
                                std::to_string(frame.version) + " needs v" +
                                std::to_string(frame.parent) + ", have v" +
                                std::to_string(latest));
    }
    return Status::DataLoss("lineage divergence: record v" +
                            std::to_string(frame.version) + " chains to v" +
                            std::to_string(frame.parent) + ", have v" +
                            std::to_string(latest));
  }
  return CommitFramedLocked(record_bytes, frame.version, frame.parent,
                            frame.payload_crc, frame.payload_bytes,
                            frame.note);
}

Status VersionLog::Compact() {
  OCT_SPAN("store/compact");
  static obs::Counter* compactions = StoreCounter("store.compactions");
  std::lock_guard<std::mutex> lock(mu_);
  const size_t keep = std::max<size_t>(1, options_.compact_keep);
  if (entries_.size() <= keep) return Status::OK();

  // Copy the kept records into one fresh segment, commit a manifest that
  // points at it, then delete the old segments. A crash anywhere leaves
  // either the old or the new manifest — both name verifiable records.
  std::vector<LogEntry> kept(entries_.end() - keep, entries_.end());
  std::string content(kSegmentMagic);
  for (LogEntry& e : kept) {
    OCT_ASSIGN_OR_RETURN(const std::string record,
                         RecordBytesLocked(e.version));
    e.offset = content.size();
    e.bytes = record.size();
    content += record;
  }
  const uint32_t new_segment = active_segment_ + 1;
  for (LogEntry& e : kept) e.segment = new_segment;
  const std::string new_path =
      (fs::path(dir_) / SegmentFileName(new_segment)).string();
  OCT_RETURN_NOT_OK(WriteFile(new_path, content));
  SyncPath(new_path);

  std::vector<LogEntry> old_entries = std::move(entries_);
  entries_ = std::move(kept);
  Status manifest = WriteManifestLocked();
  if (!manifest.ok()) {
    entries_ = std::move(old_entries);
    std::error_code ec;
    fs::remove(new_path, ec);
    return manifest;
  }
  for (const LogEntry& e : old_entries) {
    if (e.segment == new_segment) continue;
    std::error_code ec;
    fs::remove((fs::path(dir_) / SegmentFileName(e.segment)).string(), ec);
  }
  active_segment_ = new_segment;
  active_segment_bytes_ = content.size();
  compactions->Increment();
  return Status::OK();
}

Result<WarmStartReport> WarmStart(VersionLog* log,
                                  serve::TreeStore* tree_store) {
  OCT_SPAN("store/warm_start");
  static obs::Counter* warm_starts = StoreCounter("store.warm_starts");
  WarmStartReport report;
  report.log_version = log->LatestVersion();
  report.log_entries = log->Lineage().size();
  if (report.log_version > 0) {
    OCT_ASSIGN_OR_RETURN(CategoryTree tree, log->OpenLatest());
    const auto snap = tree_store->Publish(
        std::move(tree), "warmstart:v" + std::to_string(report.log_version));
    report.published_version = snap->version();
  }
  // Future publishes commit under log version = store version + base, so
  // the log version sequence keeps ascending across process generations
  // (the log may be at v7 while the fresh store restarts at v1).
  const TreeVersion base =
      report.log_version > report.published_version
          ? report.log_version - report.published_version
          : 0;
  tree_store->SetPublishHook([log, base](const serve::TreeSnapshot& snap) {
    const Status s =
        log->Commit(snap.tree(), snap.version() + base, snap.note());
    if (!s.ok()) {
      OCT_LOG_WARNING << "version-log commit for publish v" << snap.version()
                      << " failed: " << s.ToString();
    }
  });
  warm_starts->Increment();
  return report;
}

}  // namespace store
}  // namespace oct
