#include "obs/span_ring.h"

#include <algorithm>

#include "obs/metrics.h"

namespace oct {
namespace obs {

namespace {
std::atomic<SpanRing*> g_global_ring{nullptr};

Counter* EvictedCounter() {
  static Counter* evicted =
      MetricsRegistry::Default()->GetCounter(
          "obs.spans_evicted",
          "Retained spans overwritten by SpanRing wrap-around");
  return evicted;
}
}  // namespace

SpanRing::SpanRing(size_t capacity)
    : num_shards_(kShards),
      per_shard_(std::max<size_t>(1, (capacity + kShards - 1) / kShards)),
      shards_(kShards) {}

void SpanRing::Add(const SpanEvent& event) {
  Shard& shard = shards_[internal::ThreadIndex() % num_shards_];
  std::lock_guard<std::mutex> lock(shard.mu);
  total_added_.fetch_add(1, std::memory_order_relaxed);
  if (shard.events.size() < per_shard_) {
    shard.events.push_back(event);
    return;
  }
  shard.events[shard.next] = event;
  shard.next = (shard.next + 1) % per_shard_;
  total_evicted_.fetch_add(1, std::memory_order_relaxed);
  EvictedCounter()->Increment();
}

std::vector<SpanEvent> SpanRing::Latest(size_t max_spans) const {
  std::vector<SpanEvent> out;
  out.reserve(std::min(max_spans, capacity()));
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
    return a.start_ns > b.start_ns;
  });
  if (out.size() > max_spans) out.resize(max_spans);
  return out;
}

void SpanRing::InstallGlobal(SpanRing* ring) {
  g_global_ring.store(ring, std::memory_order_release);
}

SpanRing* SpanRing::Global() {
  return g_global_ring.load(std::memory_order_acquire);
}

}  // namespace obs
}  // namespace oct
