// TailSampler: tail-based trace retention. Head-based sampling decides at
// ingress — and misses exactly the requests an operator cares about,
// because the decision predates knowing the request went bad. Tail-based
// sampling records *every* request's spans into a lock-sharded pending
// buffer and decides at completion: traces that finished slow (past a
// configurable latency threshold), shed, degraded, or errored are promoted
// into the SpanRing (feeding /tracez) plus the SlowLog (/slowz); everything
// else is discarded in O(spans) with no further cost.
//
//   TailSampler sampler(opts);
//   TailSampler::InstallGlobal(&sampler);
//   ...
//   obs::TraceContext ctx = obs::StartRequestTrace(deadline_ns);
//   { obs::TraceContextScope scope(ctx);  /* spans record pending */ }
//   obs::TraceFinish fin; fin.total_us = ...; fin.shed = ...;
//   obs::FinishRequestTrace(ctx, fin);    // promote or discard
//
// Sharding: pending traces hash by trace id over kShards cacheline-aligned
// shards, so concurrent workers finishing different requests almost never
// contend. Each shard bounds its pending count (FIFO eviction, counted in
// obs.tail.traces_evicted) so a caller that forgets FinishRequestTrace
// cannot leak unbounded memory.

#ifndef OCT_OBS_TAIL_SAMPLER_H_
#define OCT_OBS_TAIL_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/slow_log.h"
#include "obs/span_ring.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace oct {
namespace obs {

struct TailSamplerOptions {
  /// Traces slower than this promote even when nothing else went wrong.
  double slow_threshold_us = 5000.0;
  /// Pending traces per shard before FIFO eviction (total bound =
  /// kShards * this).
  size_t max_pending_per_shard = 128;
  /// Spans retained per pending trace; later spans are dropped and counted.
  size_t max_spans_per_trace = 64;
  /// Promotion sinks. nullptr = resolve SpanRing::Global() /
  /// SlowLog::Global() at promotion time.
  SpanRing* ring = nullptr;
  SlowLog* slow_log = nullptr;
};

/// Everything the verdict needs, supplied by whoever finishes the request.
/// The sampler owns the promote/discard decision; callers just report what
/// happened.
struct TraceFinish {
  double total_us = 0.0;
  bool shed = false;
  bool degraded = false;
  bool errored = false;
  /// Slow-log payload (ignored when the trace is discarded).
  std::string query;
  uint64_t version = 0;
  double queue_us = 0.0;
  double resolve_us = 0.0;
  double score_us = 0.0;
  double serialize_us = 0.0;
  bool deduped = false;
};

class TailSampler {
 public:
  explicit TailSampler(TailSamplerOptions options = {});

  TailSampler(const TailSampler&) = delete;
  TailSampler& operator=(const TailSampler&) = delete;

  /// Opens a pending trace for `trace_id`. Called by StartRequestTrace.
  void StartTrace(uint64_t trace_id);

  /// Appends one finished span to its pending trace (no-op if the trace
  /// was never started or already evicted). Called from SpanEnd.
  void Record(const SpanEvent& event);

  /// Closes the trace: promotes its spans into the ring + an entry into
  /// the slow log when the verdict says slow/shed/degraded/errored,
  /// discards them otherwise. Returns true when promoted.
  bool FinishTrace(uint64_t trace_id, const TraceFinish& fin);

  /// Would a finish with these flags promote? (The verdict predicate,
  /// exposed for tests and for callers that want to pre-filter.)
  bool WouldPromote(const TraceFinish& fin) const {
    return fin.shed || fin.degraded || fin.errored ||
           fin.total_us > options_.slow_threshold_us;
  }

  const TailSamplerOptions& options() const { return options_; }

  uint64_t traces_started() const {
    return started_.load(std::memory_order_relaxed);
  }
  uint64_t traces_promoted() const {
    return promoted_.load(std::memory_order_relaxed);
  }
  uint64_t traces_discarded() const {
    return discarded_.load(std::memory_order_relaxed);
  }
  uint64_t traces_evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Installs `sampler` (nullptr to uninstall) as the process-wide pending
  /// sink SpanEnd feeds for sampled contexts. Caller owns lifetime.
  static void InstallGlobal(TailSampler* sampler);
  static TailSampler* Global();

 private:
  struct PendingTrace {
    std::vector<SpanEvent> spans;
    uint64_t dropped_spans = 0;
  };
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, PendingTrace> pending;
    std::deque<uint64_t> fifo;  // Insertion order, for bounded eviction.
  };

  static constexpr size_t kShards = 8;

  Shard& ShardFor(uint64_t trace_id) {
    // Trace ids are splitmix-mixed; low bits are already well distributed.
    return shards_[trace_id & (kShards - 1)];
  }

  const TailSamplerOptions options_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> promoted_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<uint64_t> evicted_{0};
};

/// Ingress helper: mints a TraceContext for a new request. When a global
/// TailSampler is installed the context is marked sampled and a pending
/// trace is opened; otherwise the context still carries a trace id (spans
/// tag it when tracing is enabled) but nothing is buffered.
TraceContext StartRequestTrace(uint64_t deadline_ns = 0);

/// Completion helper: routes the verdict to the installed sampler (no-op
/// when none, or when `ctx` is invalid). Returns true when the trace was
/// promoted. Call exactly once per StartRequestTrace, from whichever
/// thread finishes the request.
bool FinishRequestTrace(const TraceContext& ctx, const TraceFinish& fin);

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_TAIL_SAMPLER_H_
