// Scoped trace spans: hierarchical wall-time per pipeline phase.
//
//   {
//     OCT_SPAN("ctcr/solve_mis");
//     ... phase body ...
//   }   // span recorded on scope exit
//
// When tracing is disabled (the default) a span costs one relaxed atomic
// load and a branch — safe to leave in hot paths. When enabled, finished
// spans are appended to a thread-local buffer (guarded by a per-thread
// mutex that is uncontended except during collection), so recording never
// synchronizes threads against each other. CollectSpans() drains every
// thread's buffer; export.h turns the result into a Chrome-trace file
// (chrome://tracing / Perfetto) or aggregated JSON.
//
// Span names must be string literals (or otherwise outlive collection);
// events store the pointer, not a copy.

#ifndef OCT_OBS_TRACE_H_
#define OCT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace oct {
namespace obs {

/// One finished span. Times are nanoseconds since the process trace epoch
/// (steady clock). `depth` is the nesting level on its thread at entry
/// (outermost span = 0); `thread_id` is a small dense per-thread id.
struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;
  uint32_t thread_id = 0;

  double DurationMicros() const {
    return static_cast<double>(end_ns - start_ns) * 1e-3;
  }
};

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
/// Enters a span on the calling thread: bumps the nesting depth and returns
/// the start timestamp.
uint64_t SpanStart();
/// Leaves the innermost span: records the event and pops the depth.
void SpanEnd(const char* name, uint64_t start_ns);
}  // namespace internal

/// Globally enables/disables span recording. Spans already open when the
/// flag flips still record on close.
void SetTracingEnabled(bool enabled);

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds since the process trace epoch (first obs use).
uint64_t TraceNowNanos();

/// Drains every thread's finished spans (plus those of exited threads),
/// sorted by start time. Spans still open are not included.
std::vector<SpanEvent> CollectSpans();

/// Discards all recorded spans.
void ClearSpans();

/// RAII span; use via OCT_SPAN. Inactive (and free beyond one relaxed load)
/// when tracing is disabled at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ns_ = internal::SpanStart();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) internal::SpanEnd(name_, start_ns_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace oct

#define OCT_OBS_CONCAT_INNER(a, b) a##b
#define OCT_OBS_CONCAT(a, b) OCT_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope. `name` must
/// be a string literal ("module/phase" by convention).
#define OCT_SPAN(name) \
  ::oct::obs::ScopedSpan OCT_OBS_CONCAT(oct_scoped_span_, __LINE__)(name)

#endif  // OCT_OBS_TRACE_H_
