// Scoped trace spans: hierarchical wall-time per pipeline phase.
//
//   {
//     OCT_SPAN("ctcr/solve_mis");
//     ... phase body ...
//   }   // span recorded on scope exit
//
// When tracing is disabled (the default) and no sampled request context is
// installed, a span costs one relaxed atomic load, one TLS read, and a
// branch — safe to leave in hot paths. When active, finished spans are
// appended to a thread-local buffer (guarded by a per-thread mutex that is
// uncontended except during collection), so recording never synchronizes
// threads against each other. CollectSpans() drains every thread's buffer;
// export.h turns the result into a Chrome-trace file (chrome://tracing /
// Perfetto) or aggregated JSON.
//
// Parenting is explicit: every span gets a process-unique span_id and
// records the span_id of the innermost span open on its thread (or carried
// in by the installed TraceContext) as parent_id. Cross-thread request
// spans therefore parent correctly — nesting depth and thread id are kept
// as display hints only. Spans finished while a *sampled* TraceContext is
// installed route to the tail sampler's pending buffer instead (see
// tail_sampler.h); the tail verdict decides whether they are retained.
//
// Span names must be string literals (or otherwise outlive collection);
// events store the pointer, not a copy.

#ifndef OCT_OBS_TRACE_H_
#define OCT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/trace_context.h"

namespace oct {
namespace obs {

/// One finished span. Times are nanoseconds since the process trace epoch
/// (steady clock). `depth` is the nesting level on its thread at entry
/// (outermost span = 0); `thread_id` is a small dense per-thread id.
/// `trace_id` is 0 for spans recorded outside any request context;
/// `parent_id` is 0 for roots.
struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;
  uint32_t thread_id = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;

  double DurationMicros() const {
    return static_cast<double>(end_ns - start_ns) * 1e-3;
  }
};

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
/// Enters a span on the calling thread: bumps the nesting depth, assigns
/// the span's id, captures the current parent, points the thread's
/// parent-span register at the new span, and returns the start timestamp.
uint64_t SpanStart(uint64_t* span_id, uint64_t* parent_id);
/// Leaves the innermost span: restores the parent register and records the
/// event (to the tail sampler's pending buffer when a sampled context is
/// installed; to the span ring + collection buffers when `collect` — the
/// tracing-enabled state at span open — is set).
void SpanEnd(const char* name, uint64_t start_ns, uint64_t span_id,
             uint64_t parent_id, bool collect);
}  // namespace internal

/// Globally enables/disables span recording. Spans already open when the
/// flag flips still record on close. Independent of request sampling:
/// a sampled TraceContext records its spans even while this is off.
void SetTracingEnabled(bool enabled);

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds since the process trace epoch (first obs use).
uint64_t TraceNowNanos();

/// Drains every thread's finished spans (plus those of exited threads),
/// sorted by start time. Spans still open are not included.
std::vector<SpanEvent> CollectSpans();

/// Discards all recorded spans.
void ClearSpans();

/// Records one already-timed span with an explicit parent override —
/// the cross-trace link primitive. The span carries the installed
/// context's trace id (0 when none) and a fresh span id, but attaches
/// under `parent_id` rather than the thread's innermost span: a dedup
/// follower's span points at the leader's scoring span this way.
void RecordLinkedSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                      uint64_t parent_id);

/// RAII span; use via OCT_SPAN. Inactive (and free beyond one relaxed load
/// plus one TLS read) when neither tracing nor a sampled request context is
/// active at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    const TraceContext& ctx = internal::g_trace_context;
    collect_ = TracingEnabled();
    if (collect_ || (ctx.sampled && ctx.trace_id != 0)) {
      name_ = name;
      start_ns_ = internal::SpanStart(&span_id_, &parent_id_);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::SpanEnd(name_, start_ns_, span_id_, parent_id_, collect_);
    }
  }

  /// This span's id while active (0 when the span is inactive). Lets call
  /// sites hand their span out as an explicit parent (dedup fan-out).
  uint64_t span_id() const { return span_id_; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  bool collect_ = false;  // Tracing-enabled state at open; fixed for life.
};

}  // namespace obs
}  // namespace oct

#define OCT_OBS_CONCAT_INNER(a, b) a##b
#define OCT_OBS_CONCAT(a, b) OCT_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope. `name` must
/// be a string literal ("module/phase" by convention).
#define OCT_SPAN(name) \
  ::oct::obs::ScopedSpan OCT_OBS_CONCAT(oct_scoped_span_, __LINE__)(name)

/// Like OCT_SPAN but names the variable, so the body can read its
/// span_id() to link other spans under it.
#define OCT_NAMED_SPAN(var, name) ::oct::obs::ScopedSpan var(name)

#endif  // OCT_OBS_TRACE_H_
