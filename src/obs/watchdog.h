// Watchdog: stalled-pump detection via heartbeat ages.
//
// The serving stack runs several background pumps — the delta maintainer,
// the replica shipper, the rebuild scheduler. When one wedges (deadlock,
// unbounded retry, lost wakeup) the first externally visible symptom is
// often the circuit breaker tripping minutes later, long after the root
// cause. The watchdog makes the wedge itself observable: each pump beats
// a named heartbeat once per iteration, and Check() flags any pump whose
// last beat is older than its stall threshold — surfaced on /sloz and
// folded into /healthz degraded state before the breaker trips.
//
//   Watchdog dog;
//   dog.RegisterPump("delta.maintainer", /*stall_threshold_seconds=*/30);
//   Watchdog::InstallGlobal(&dog);
//   ...
//   obs::WatchdogBeat("delta.maintainer");   // end of each pump iteration
//
// A pump that has never beaten is "idle", not stalled — pumps may be
// legitimately disabled — so stall needs at least one beat on record.
// Each beat also publishes obs.pump.<name>.beats to the default metrics
// registry, giving dashboards a liveness series per pump.

#ifndef OCT_OBS_WATCHDOG_H_
#define OCT_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oct {
namespace obs {

class Counter;

struct PumpStatus {
  std::string name;
  uint64_t beats = 0;
  double stall_threshold_seconds = 0.0;
  /// Seconds since the last beat; 0 when the pump has never beaten.
  double age_seconds = 0.0;
  bool stalled = false;
};

class Watchdog {
 public:
  Watchdog() = default;

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a pump; idempotent by name (later thresholds win). Call
  /// before the pump starts beating.
  void RegisterPump(const std::string& name, double stall_threshold_seconds);

  /// Records one heartbeat for `name`. Unknown names are ignored, so
  /// instrumented pumps run fine without a configured watchdog entry.
  void Beat(const std::string& name);

  /// Evaluates every pump against the current clock.
  std::vector<PumpStatus> Check() const;

  /// True when any registered pump with at least one beat has gone quiet
  /// past its threshold.
  bool AnyStalled() const;

  /// Installs `dog` (nullptr to uninstall) as the process-wide watchdog
  /// WatchdogBeat feeds. Caller owns lifetime.
  static void InstallGlobal(Watchdog* dog);
  static Watchdog* Global();

 private:
  struct Pump {
    std::string name;
    double stall_threshold_seconds = 0.0;
    std::atomic<uint64_t> beats{0};
    std::atomic<uint64_t> last_beat_ns{0};
    Counter* beat_counter = nullptr;  // obs.pump.<name>.beats
  };

  Pump* Find(const std::string& name) const;

  /// Same snapshot-swap pattern as SloEngine: registration rebuilds an
  /// immutable index (old ones leak, registration is startup-only);
  /// beats and checks scan it without locking.
  struct Index {
    std::vector<Pump*> items;
  };

  mutable std::mutex mu_;  // Serializes RegisterPump.
  std::vector<std::unique_ptr<Pump>> pumps_;
  std::atomic<Index*> index_{nullptr};
};

/// Heartbeat helper for pump code: routes to the installed global
/// watchdog, no-op when none. Cheap enough to leave in every pump loop.
void WatchdogBeat(const std::string& name);

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_WATCHDOG_H_
