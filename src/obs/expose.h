// ExpositionServer: a small embedded HTTP/1.1 endpoint that makes a running
// process observable from the outside — the pull-based counterpart to the
// after-the-fact file exporters in export.h. A Prometheus scraper, a curl
// in a terminal, or the CI smoke job all read the same live state:
//
//   /metrics   Prometheus text format 0.0.4 (counters, gauges, histograms
//              as cumulative _bucket/_sum/_count series, names sanitized;
//              buckets carry OpenMetrics exemplars when the histogram
//              recorded any — `# {trace_id="..."} value ts`)
//   /varz      the JSON metrics export (MetricsToJson), for dashboards
//   /healthz   200 "ok" / "degraded: ..." / 503 "unhealthy" from the
//              installed health hook
//   /tracez    most recent completed spans from the SpanRing retention
//              buffer, as JSON (newest first). ?trace_id=<hex> filters to
//              one request's spans, sorted by start time — the reassembled
//              cross-thread span tree.
//   /slowz     the tail-sampled slow-request log (SlowLog): requests that
//              finished slow, shed, degraded, or errored, newest first,
//              with per-stage latency breakdown
//   /sloz      SLO burn-rate status per objective (SloEngine) plus
//              watchdog pump heartbeats (Watchdog)
//   /statusz   process status JSON: build info, uptime, plus whatever the
//              installed status hook contributes (the serving stack adds
//              snapshot version and retained-version history)
//
// Transport: POSIX sockets, IPv4, loopback by default. One dedicated
// acceptor thread runs a blocking accept loop; accepted connections go to a
// bounded queue drained by a small fixed pool of handler threads, so a slow
// scraper can never wedge the acceptor and the connection count is bounded
// by construction (overflow connections get 503 + close). Start() binds
// (port 0 picks a free port — tests and parallel CI jobs rely on this);
// Stop() closes the listener, drains in-flight handlers, and joins every
// thread. Request reads and connection accepts carry fault.* failpoints
// ("obs.expose.accept", "obs.expose.read") so chaos schedules cover the
// network path.
//
// This is an exposition endpoint, not a web framework: GET only, one
// request per connection ("Connection: close"), bounded request size,
// blocking IO with timeouts.

#ifndef OCT_OBS_EXPOSE_H_
#define OCT_OBS_EXPOSE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/slow_log.h"
#include "obs/span_ring.h"
#include "obs/watchdog.h"
#include "util/status.h"

namespace oct {
namespace obs {

/// What /healthz reports. `detail` is included in the response body.
/// `degraded` marks a process that still serves but needs attention (SLO
/// burning, pump stalled): /healthz answers 200 "degraded: ..." so probes
/// keep routing to it while dashboards see the flag.
struct HealthReport {
  bool healthy = true;
  std::string detail;
  bool degraded = false;
};

struct HttpRequest;

struct ExpositionOptions {
  /// TCP port to bind; 0 picks any free port (read it back via port()).
  int port = 0;
  /// Bind address. Exposition is operator-facing; default to loopback.
  std::string bind_address = "127.0.0.1";
  /// Handler threads draining the accepted-connection queue.
  int num_workers = 2;
  /// Accepted connections waiting for a handler beyond this are answered
  /// 503 and closed by the acceptor.
  size_t max_pending_connections = 16;
  /// Requests whose header block exceeds this many bytes are rejected 431.
  size_t max_request_bytes = 8192;
  /// Per-connection receive/send timeout.
  double io_timeout_seconds = 5.0;
  /// Registries rendered by /metrics and /varz, in order; metrics appearing
  /// in several registries render from the first. Empty means
  /// {MetricsRegistry::Default()}. The serving stack appends its
  /// per-instance ServeStats registry here.
  std::vector<const MetricsRegistry*> registries;
  /// Source of /tracez spans; nullptr falls back to SpanRing::Global()
  /// (and /tracez reports "no span ring installed" when that is null too).
  SpanRing* span_ring = nullptr;
  /// Most recent spans /tracez returns.
  size_t tracez_limit = 256;
  /// Source of /slowz entries; nullptr falls back to SlowLog::Global().
  SlowLog* slow_log = nullptr;
  /// Most recent entries /slowz returns.
  size_t slowz_limit = 64;
  /// Source of /sloz objective status; nullptr falls back to
  /// SloEngine::Global().
  SloEngine* slo = nullptr;
  /// Source of /sloz pump heartbeats; nullptr falls back to
  /// Watchdog::Global().
  Watchdog* watchdog = nullptr;
  /// /healthz hook; unset means unconditionally healthy.
  std::function<HealthReport()> health;
  /// Extra /statusz fields: must return a JSON *object* string (e.g.
  /// {"serving":{...}}-style content without the outer braces is NOT
  /// expected — return a complete object; it is spliced under "app").
  std::function<std::string()> status_json;
  /// Extra fields spliced into the /statusz "build" object: key -> raw
  /// JSON value (already serialized, e.g. {"kernel_isa", "\"avx2\""}).
  /// Lets layers above obs (the serving stack) report build-level facts —
  /// obs itself must not depend on them. Keys must not collide with the
  /// built-ins (compiler, assertions, failpoints, perf_counters).
  std::vector<std::pair<std::string, std::string>> build_info;
  /// Application GET endpoints beyond the built-ins, matched on exact
  /// path after the built-ins. Handlers return a *complete* HTTP response
  /// (use MakeHttpResponse) and must be thread-safe — they run on handler
  /// threads. The serving stack mounts /route here.
  struct Endpoint {
    std::string path;
    std::function<std::string(const HttpRequest&)> handler;
  };
  std::vector<Endpoint> extra_endpoints;
};

/// One parsed HTTP request line (the only part of a request we interpret).
struct HttpRequest {
  std::string method;
  std::string path;
  /// Raw query string after '?' (no leading '?'); "" when absent. Parse
  /// individual parameters with HttpQueryParam.
  std::string query;
};

/// Parses the request-line + header block in `raw`. Fails with
/// InvalidArgument on malformed input. Exposed for tests.
Result<HttpRequest> ParseHttpRequest(const std::string& raw);

/// Value of `key` in a URL query string ("a=1&b=2"), percent-decoded with
/// '+' as space; "" when the key is absent.
std::string HttpQueryParam(const std::string& query, const std::string& key);

/// Builds a full HTTP/1.1 response (status line, Content-Type/Length,
/// Connection: close, body) — the building block custom endpoints use.
std::string MakeHttpResponse(int status, const std::string& content_type,
                             const std::string& body);

/// Sanitizes a metric name into the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte becomes '_', and a leading
/// digit gets a '_' prefix ("serve.p99" -> "serve_p99").
std::string SanitizeMetricName(const std::string& name);

/// Renders every registry into Prometheus text exposition format 0.0.4:
/// counters (as-is, monotonic), gauges, and histograms as cumulative
/// `_bucket{le="..."}`/`_sum`/`_count` series with a terminal le="+Inf",
/// with # HELP/# TYPE metadata lines. Duplicate names across registries
/// render from the first registry only.
std::string RenderPrometheus(
    const std::vector<const MetricsRegistry*>& registries);

/// JSON render of the SpanRing's most recent `limit` spans (newest first).
/// When `trace_id` != 0 only that trace's spans are returned, sorted by
/// start time (the request's span tree; parent_id links reassemble it).
std::string RenderTracez(const SpanRing* ring, size_t limit,
                         uint64_t trace_id = 0);

/// JSON render of the SlowLog's most recent `limit` entries (newest first).
std::string RenderSlowz(const SlowLog* log, size_t limit);

/// JSON render of SLO burn-rate status plus watchdog pump heartbeats.
/// Either source may be null (rendered as empty arrays).
std::string RenderSloz(const SloEngine* engine, const Watchdog* watchdog);

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1:`port`; returns the raw
/// response (status line, headers, body). For tests, benches, and the
/// example self-check — not a general client.
Result<std::string> HttpGetLocal(int port, const std::string& path,
                                 double timeout_seconds = 5.0);

class ExpositionServer {
 public:
  explicit ExpositionServer(ExpositionOptions options);
  /// Stops the server if still running.
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds, listens, and starts the acceptor + handler threads. Fails with
  /// Internal when the address cannot be bound, FailedPrecondition when
  /// already running.
  Status Start();

  /// Shuts the listener down, completes in-flight requests, joins all
  /// threads. Idempotent; safe to call with connections mid-read (they are
  /// answered or closed, never leaked).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (resolves port 0); 0 while not running.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Routes one already-parsed request to its endpoint and returns the full
  /// HTTP response bytes. Exposed so unit tests can exercise endpoint logic
  /// without sockets.
  std::string HandleRequest(const std::string& raw_request) const;

 private:
  struct Listener;  // POSIX fd state (kept out of the header).

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd) const;
  std::string RespondTo(const HttpRequest& request) const;

  ExpositionOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Bounded handoff queue acceptor -> workers (guarded by queue mutex
  // inside Listener to keep <mutex>-heavy detail out of the header).
  uint64_t start_ns_ = 0;  // TraceNowNanos() at Start, for /statusz uptime.
};

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_EXPOSE_H_
