#include "obs/expose.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>

#include "fault/failpoint.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/perf_counters.h"

namespace oct {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Server-side metrics (default registry; the server watches itself).
// ---------------------------------------------------------------------------

Counter* RequestsCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.expose.requests", "HTTP requests answered by the exposition server");
  return c;
}

Counter* BadRequestsCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.expose.bad_requests",
      "Exposition requests rejected (malformed, oversized, or wrong method)");
  return c;
}

Counter* RejectedConnectionsCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.expose.rejected_connections",
      "Connections shed because the pending-connection queue was full");
  return c;
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string TextResponse(int status, const std::string& body) {
  return MakeHttpResponse(status, "text/plain; charset=utf-8", body);
}

std::string JsonResponse(int status, const std::string& body) {
  return MakeHttpResponse(status, "application/json", body);
}

void AppendPrometheusValue(std::string* out, double value) {
  if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (std::isnan(value)) {
    *out += "NaN";
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

/// Escapes a HELP text per the exposition format (backslash and newline).
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MakeHttpResponse(int status, const std::string& content_type,
                             const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

namespace {

/// Percent-decodes one URL query component; '+' means space.
std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return c - 'A' + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

std::string HttpQueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return UrlDecode(query.substr(eq + 1, amp - eq - 1));
    }
    pos = amp + 1;
  }
  return "";
}

Result<HttpRequest> ParseHttpRequest(const std::string& raw) {
  const size_t line_end = raw.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    return Status::InvalidArgument("malformed request line: no method");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed request line: no target");
  }
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("malformed request line: bad version '" +
                                   version + "'");
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Built-in endpoints are parameterless; extra endpoints (e.g. /route)
  // read parameters from `query` via HttpQueryParam.
  const size_t query = request.path.find('?');
  if (query != std::string::npos) {
    request.query = request.path.substr(query + 1);
    request.path.resize(query);
  }
  if (request.path.empty() || request.path[0] != '/') {
    return Status::InvalidArgument("malformed request target: " +
                                   request.path);
  }
  return request;
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) return "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string RenderPrometheus(
    const std::vector<const MetricsRegistry*>& registries) {
  std::string out;
  std::set<std::string> seen;  // First registry wins on duplicate names.
  const auto emit_header = [&out](const std::string& prom_name,
                                  const MetricsRegistry::MetricMeta& meta,
                                  const char* type) {
    if (!meta.help.empty()) {
      std::string help = meta.help;
      if (!meta.unit.empty()) help += " (unit: " + meta.unit + ")";
      out += "# HELP " + prom_name + " " + EscapeHelp(help) + "\n";
    }
    out += "# TYPE " + prom_name + " " + type + "\n";
  };
  for (const MetricsRegistry* registry : registries) {
    if (registry == nullptr) continue;
    for (const auto& [name, value] : registry->CounterValues()) {
      if (!seen.insert(name).second) continue;
      const std::string prom = SanitizeMetricName(name);
      emit_header(prom, registry->MetaFor(name), "counter");
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : registry->GaugeValues()) {
      if (!seen.insert(name).second) continue;
      const std::string prom = SanitizeMetricName(name);
      emit_header(prom, registry->MetaFor(name), "gauge");
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, snap] : registry->HistogramValues()) {
      if (!seen.insert(name).second) continue;
      const std::string prom = SanitizeMetricName(name);
      emit_header(prom, registry->MetaFor(name), "histogram");
      for (const CumulativeBucket& bucket : snap.CumulativeBuckets()) {
        out += prom + "_bucket{le=\"";
        AppendPrometheusValue(&out, bucket.le);
        out += "\"} " + std::to_string(bucket.count);
        // OpenMetrics exemplar: link the bucket to a trace that landed in
        // it. Exemplars are legal only on _bucket lines; the sum/count
        // series below never carry them.
        if (bucket.index < snap.exemplars.size() &&
            snap.exemplars[bucket.index].trace_id != 0) {
          const Exemplar& ex = snap.exemplars[bucket.index];
          out += " # {trace_id=\"" + TraceIdToHex(ex.trace_id) + "\"} ";
          AppendPrometheusValue(&out, ex.value);
          out += " ";
          AppendPrometheusValue(&out, ex.timestamp);
        }
        out += "\n";
      }
      out += prom + "_sum ";
      AppendPrometheusValue(&out, snap.sum);
      out += "\n";
      out += prom + "_count " + std::to_string(snap.count) + "\n";
    }
  }
  return out;
}

std::string RenderTracez(const SpanRing* ring, size_t limit,
                         uint64_t trace_id) {
  JsonWriter w;
  w.BeginObject();
  if (ring == nullptr) {
    w.Key("error").String("no span ring installed");
    w.Key("spans").BeginArray().EndArray();
    w.EndObject();
    return w.str();
  }
  std::vector<SpanEvent> spans;
  if (trace_id != 0) {
    // One request's tree: scan the whole retention window (a request's
    // spans may be far apart in recency) and put parents before children.
    for (const SpanEvent& e : ring->Latest(ring->capacity())) {
      if (e.trace_id == trace_id) spans.push_back(e);
    }
    std::sort(spans.begin(), spans.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.end_ns > b.end_ns;
              });
    if (spans.size() > limit) spans.resize(limit);
  } else {
    spans = ring->Latest(limit);
  }
  w.Key("retained_capacity").Uint(ring->capacity());
  w.Key("total_added").Uint(ring->total_added());
  w.Key("total_evicted").Uint(ring->total_evicted());
  w.Key("now_ns").Uint(TraceNowNanos());
  if (trace_id != 0) w.Key("trace_id").String(TraceIdToHex(trace_id));
  w.Key("spans").BeginArray();
  for (const SpanEvent& e : spans) {
    w.BeginObject();
    w.Key("name").String(e.name == nullptr ? "?" : e.name);
    w.Key("start_ns").Uint(e.start_ns);
    w.Key("end_ns").Uint(e.end_ns);
    w.Key("dur_us").Double(e.DurationMicros());
    w.Key("thread").Uint(e.thread_id);
    w.Key("depth").Uint(e.depth);
    if (e.trace_id != 0) w.Key("trace_id").String(TraceIdToHex(e.trace_id));
    w.Key("span_id").Uint(e.span_id);
    w.Key("parent_id").Uint(e.parent_id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RenderSlowz(const SlowLog* log, size_t limit) {
  JsonWriter w;
  w.BeginObject();
  if (log == nullptr) {
    w.Key("error").String("no slow log installed");
    w.Key("requests").BeginArray().EndArray();
    w.EndObject();
    return w.str();
  }
  w.Key("capacity").Uint(log->capacity());
  w.Key("total_added").Uint(log->total_added());
  w.Key("requests").BeginArray();
  for (const SlowRequestEntry& e : log->Latest(limit)) {
    w.BeginObject();
    w.Key("trace_id").String(TraceIdToHex(e.trace_id));
    w.Key("reason").String(TailReasonName(e.reason));
    w.Key("query").String(e.query);
    w.Key("version").Uint(e.version);
    w.Key("total_us").Double(e.total_us);
    w.Key("queue_us").Double(e.queue_us);
    w.Key("resolve_us").Double(e.resolve_us);
    w.Key("score_us").Double(e.score_us);
    w.Key("serialize_us").Double(e.serialize_us);
    w.Key("deduped").Bool(e.deduped);
    w.Key("shed").Bool(e.shed);
    w.Key("degraded").Bool(e.degraded);
    w.Key("errored").Bool(e.errored);
    w.Key("end_ns").Uint(e.end_ns);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RenderSloz(const SloEngine* engine, const Watchdog* watchdog) {
  JsonWriter w;
  w.BeginObject();
  bool any_alerting = false;
  bool any_stalled = false;
  w.Key("objectives").BeginArray();
  if (engine != nullptr) {
    for (const SloStatus& s : engine->Check()) {
      any_alerting = any_alerting || s.alerting;
      w.BeginObject();
      w.Key("name").String(s.name);
      if (!s.description.empty()) w.Key("description").String(s.description);
      w.Key("target").Double(s.target);
      w.Key("window_seconds").Uint(s.window_seconds);
      w.Key("short_window_seconds").Uint(s.short_window_seconds);
      w.Key("burn_alert_threshold").Double(s.burn_alert_threshold);
      w.Key("good").Uint(s.good);
      w.Key("total").Uint(s.total);
      w.Key("burn_long").Double(s.burn_long);
      w.Key("burn_short").Double(s.burn_short);
      w.Key("alerting").Bool(s.alerting);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("pumps").BeginArray();
  if (watchdog != nullptr) {
    for (const PumpStatus& p : watchdog->Check()) {
      any_stalled = any_stalled || p.stalled;
      w.BeginObject();
      w.Key("name").String(p.name);
      w.Key("beats").Uint(p.beats);
      w.Key("stall_threshold_seconds").Double(p.stall_threshold_seconds);
      w.Key("age_seconds").Double(p.age_seconds);
      w.Key("stalled").Bool(p.stalled);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("any_alerting").Bool(any_alerting);
  w.Key("any_stalled").Bool(any_stalled);
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// ExpositionServer
// ---------------------------------------------------------------------------

/// Socket + handoff-queue state, kept out of the header so expose.h stays
/// free of platform includes.
struct ExpositionServer::Listener {
  int fd = -1;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;  // Accepted connection fds awaiting a handler.
  bool shutting_down = false;
};

ExpositionServer::ExpositionServer(ExpositionOptions options)
    : options_(std::move(options)) {
  if (options_.registries.empty()) {
    options_.registries.push_back(MetricsRegistry::Default());
  }
  if (options_.num_workers < 1) options_.num_workers = 1;
}

ExpositionServer::~ExpositionServer() { Stop(); }

Status ExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exposition server already running");
  }
  auto listener = std::make_unique<Listener>();
  listener->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener->fd < 0) {
    return Status::Internal(std::string("socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listener->fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listener->fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listener->fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                               std::to_string(options_.port) + "): " + err);
  }
  if (::listen(listener->fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listener->fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener->fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listener->fd);
    return Status::Internal("getsockname(): " + err);
  }

  listener_ = std::move(listener);
  start_ns_ = TraceNowNanos();
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Closing the listening socket makes the blocked accept() return; the
  // acceptor then exits because running_ is false.
  ::shutdown(listener_->fd, SHUT_RDWR);
  ::close(listener_->fd);
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(listener_->mu);
    listener_->shutting_down = true;
  }
  listener_->cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Connections still queued were never picked up; close them cleanly.
  for (int fd : listener_->pending) ::close(fd);
  listener_->pending.clear();
  listener_.reset();
  port_.store(0, std::memory_order_release);
}

void ExpositionServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listener_->fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // Listener closed or broken beyond repair.
    }
    if (!OCT_FAILPOINT("obs.expose.accept").ok()) {
      ::close(fd);  // Injected accept failure: shed the connection.
      continue;
    }
    // IO timeouts so a stalled peer cannot pin a handler forever.
    timeval tv{};
    tv.tv_sec = static_cast<long>(options_.io_timeout_seconds);
    tv.tv_usec = static_cast<long>(
        (options_.io_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(listener_->mu);
      if (listener_->pending.size() < options_.max_pending_connections) {
        listener_->pending.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      listener_->cv.notify_one();
    } else {
      // Queue full: shed load with an explicit 503 instead of letting the
      // kernel backlog time the scraper out invisibly.
      RejectedConnectionsCounter()->Increment();
      const std::string response =
          TextResponse(503, "exposition queue full\n");
      (void)!::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
      ::close(fd);
    }
  }
}

void ExpositionServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(listener_->mu);
      listener_->cv.wait(lock, [this] {
        return listener_->shutting_down || !listener_->pending.empty();
      });
      if (!listener_->pending.empty()) {
        fd = listener_->pending.front();
        listener_->pending.pop_front();
      } else if (listener_->shutting_down) {
        return;
      }
    }
    if (fd >= 0) ServeConnection(fd);
  }
}

void ExpositionServer::ServeConnection(int fd) const {
  std::string raw;
  std::string response;
  if (!OCT_FAILPOINT("obs.expose.read").ok()) {
    ::close(fd);  // Injected read failure: drop mid-request.
    return;
  }
  char buf[2048];
  bool oversized = false;
  while (raw.find("\r\n\r\n") == std::string::npos) {
    if (raw.size() > options_.max_request_bytes) {
      oversized = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Peer closed, timed out, or errored.
    raw.append(buf, static_cast<size_t>(n));
  }
  if (oversized) {
    BadRequestsCounter()->Increment();
    response = TextResponse(431, "request header block too large\n");
  } else if (raw.empty()) {
    ::close(fd);  // Connected and left without sending anything.
    return;
  } else {
    response = HandleRequest(raw);
  }
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
}

std::string ExpositionServer::HandleRequest(
    const std::string& raw_request) const {
  RequestsCounter()->Increment();
  if (raw_request.size() > options_.max_request_bytes) {
    BadRequestsCounter()->Increment();
    return TextResponse(431, "request header block too large\n");
  }
  const Result<HttpRequest> parsed = ParseHttpRequest(raw_request);
  if (!parsed.ok()) {
    BadRequestsCounter()->Increment();
    return TextResponse(400, parsed.status().ToString() + "\n");
  }
  if (parsed->method != "GET" && parsed->method != "HEAD") {
    BadRequestsCounter()->Increment();
    return TextResponse(405, "only GET is supported\n");
  }
  return RespondTo(*parsed);
}

std::string ExpositionServer::RespondTo(const HttpRequest& request) const {
  OCT_SPAN("obs/expose_request");
  if (request.path == "/metrics") {
    return MakeHttpResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                            RenderPrometheus(options_.registries));
  }
  if (request.path == "/varz") {
    // /varz merges like /metrics: one JSON document per registry under its
    // index, first registry first (names are disjoint in practice).
    if (options_.registries.size() == 1) {
      return JsonResponse(200, MetricsToJson(*options_.registries[0]));
    }
    JsonWriter w;
    w.BeginArray();
    for (const MetricsRegistry* registry : options_.registries) {
      if (registry != nullptr) w.Raw(MetricsToJson(*registry));
    }
    w.EndArray();
    return JsonResponse(200, w.str());
  }
  if (request.path == "/healthz") {
    HealthReport report;
    if (options_.health) report = options_.health();
    // Degraded is still 200: probes keep the instance in rotation while
    // the body flags it for operators and the smoke job.
    std::string body =
        !report.healthy ? "unhealthy" : (report.degraded ? "degraded" : "ok");
    if (!report.detail.empty()) body += ": " + report.detail;
    body += "\n";
    return TextResponse(report.healthy ? 200 : 503, body);
  }
  if (request.path == "/tracez") {
    const SpanRing* ring = options_.span_ring != nullptr ? options_.span_ring
                                                         : SpanRing::Global();
    const uint64_t trace_id =
        TraceIdFromHex(HttpQueryParam(request.query, "trace_id"));
    return JsonResponse(200,
                        RenderTracez(ring, options_.tracez_limit, trace_id));
  }
  if (request.path == "/slowz") {
    const SlowLog* log =
        options_.slow_log != nullptr ? options_.slow_log : SlowLog::Global();
    return JsonResponse(200, RenderSlowz(log, options_.slowz_limit));
  }
  if (request.path == "/sloz") {
    const SloEngine* engine =
        options_.slo != nullptr ? options_.slo : SloEngine::Global();
    const Watchdog* dog = options_.watchdog != nullptr ? options_.watchdog
                                                       : Watchdog::Global();
    return JsonResponse(200, RenderSloz(engine, dog));
  }
  if (request.path == "/statusz" || request.path == "/") {
    JsonWriter w;
    w.BeginObject();
    w.Key("server").String("oct exposition");
    w.Key("build").BeginObject();
#if defined(__VERSION__)
    w.Key("compiler").String(__VERSION__);
#endif
#if defined(NDEBUG)
    w.Key("assertions").Bool(false);
#else
    w.Key("assertions").Bool(true);
#endif
    w.Key("failpoints").Bool(OCT_FAILPOINTS_ENABLED != 0);
    // Whether perf_event_open works here — tells an operator at a glance
    // if the bench snapshots from this machine carry hardware counters.
    w.Key("perf_counters").Bool(util::PerfCounters::Supported());
    for (const auto& [key, json] : options_.build_info) {
      w.Key(key).Raw(json);
    }
    w.EndObject();
    w.Key("uptime_seconds")
        .Double(static_cast<double>(TraceNowNanos() - start_ns_) * 1e-9);
    w.Key("tracing_enabled").Bool(TracingEnabled());
    w.Key("endpoints").BeginArray();
    for (const char* e : {"/metrics", "/varz", "/healthz", "/tracez",
                          "/slowz", "/sloz", "/statusz"}) {
      w.String(e);
    }
    for (const ExpositionOptions::Endpoint& e : options_.extra_endpoints) {
      w.String(e.path);
    }
    w.EndArray();
    if (options_.status_json) {
      w.Key("app").Raw(options_.status_json());
    }
    w.EndObject();
    return JsonResponse(200, w.str());
  }
  for (const ExpositionOptions::Endpoint& endpoint :
       options_.extra_endpoints) {
    if (request.path == endpoint.path && endpoint.handler) {
      return endpoint.handler(request);
    }
  }
  return TextResponse(404, "no such endpoint: " + request.path + "\n");
}

// ---------------------------------------------------------------------------
// HttpGetLocal
// ---------------------------------------------------------------------------

Result<std::string> HttpGetLocal(int port, const std::string& path,
                                 double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") +
                               std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>(
      (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                               "): " + err);
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("send(): " + err);
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("recv(): " + err);
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.empty()) {
    return Status::Internal("empty response from 127.0.0.1:" +
                               std::to_string(port));
  }
  return response;
}

}  // namespace obs
}  // namespace oct
