// SloEngine: declarative service-level objectives with multi-window
// burn-rate alerting.
//
// An objective is "target fraction of events must be good over a sliding
// window" — e.g. 99% of routes complete in < 5 ms, 99.9% of requests are
// not shed. The engine tracks each objective in a ring of per-second
// atomic buckets and computes the *burn rate*: the observed bad fraction
// divided by the error budget (1 - target). Burn 1.0 means the budget is
// being consumed exactly at the sustainable pace; burn 10 means the
// budget for the whole window disappears in a tenth of it.
//
// Alerts use the standard multi-window rule: fire only when BOTH the
// short window (fast detection, noisy alone) and the long window
// (evidence the problem persists) exceed the burn threshold. A brief
// latency blip moves the short window but not the long one; a sustained
// regression moves both.
//
//   SloEngine engine;
//   engine.AddObjective({.name = "router.latency", .target = 0.99,
//                        .latency_threshold_us = 5000.0});
//   SloEngine::InstallGlobal(&engine);
//   ...
//   engine.RecordLatency("router.latency", total_us);   // hot path
//   ...
//   for (const SloStatus& s : engine.Check()) { ... }    // /sloz
//
// Recording is lock-free: one bucket claim (CAS on the second tag) plus
// two relaxed fetch_adds. Samples racing a bucket transition (the ring
// slot being reclaimed for a new second) can be lost; at one transition
// per objective per second the distortion is far below alerting
// granularity and is the price of a mutex-free hot path.

#ifndef OCT_OBS_SLO_H_
#define OCT_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oct {
namespace obs {

struct SloObjectiveSpec {
  /// Identifier used by Record*/Check and shown on /sloz.
  std::string name;
  std::string description;
  /// Target good fraction in (0, 1), e.g. 0.99. Error budget = 1 - target.
  double target = 0.99;
  /// Long window (seconds): the ring's span and the "is it persistent"
  /// alert arm.
  uint64_t window_seconds = 300;
  /// Short window (seconds): the "is it happening now" alert arm.
  uint64_t short_window_seconds = 60;
  /// Alert when burn rate exceeds this in BOTH windows. 1.0 = budget
  /// consumed exactly at the sustainable pace.
  double burn_alert_threshold = 2.0;
  /// When > 0 the objective is latency-shaped: RecordLatency(name, us)
  /// counts the sample good iff us <= this. 0 = availability-shaped
  /// (callers use Record(name, good)).
  double latency_threshold_us = 0.0;
};

/// One objective's evaluation at Check() time.
struct SloStatus {
  std::string name;
  std::string description;
  double target = 0.0;
  uint64_t window_seconds = 0;
  uint64_t short_window_seconds = 0;
  double burn_alert_threshold = 0.0;
  /// Long-window tallies.
  uint64_t good = 0;
  uint64_t total = 0;
  /// Burn rates; 0 when the corresponding window has no samples.
  double burn_long = 0.0;
  double burn_short = 0.0;
  bool alerting = false;
};

class SloEngine {
 public:
  SloEngine() = default;

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Registers one objective. Call before recording; names are matched by
  /// linear scan, so keep the set small (it is: a handful per service).
  void AddObjective(const SloObjectiveSpec& spec);

  /// Records one availability-shaped sample for `name`. Unknown names are
  /// ignored (the caller may run with a partially configured engine).
  void Record(const std::string& name, bool good);

  /// Records one latency-shaped sample: good iff us <= the objective's
  /// latency_threshold_us.
  void RecordLatency(const std::string& name, double us);

  /// Evaluates every objective against the current clock.
  std::vector<SloStatus> Check() const;

  /// True when any objective is alerting — the bit /healthz folds into its
  /// degraded state.
  bool AnyAlerting() const;

  size_t num_objectives() const;

  /// Installs `engine` (nullptr to uninstall) as the process-wide engine
  /// the router's hot path records into. Caller owns lifetime.
  static void InstallGlobal(SloEngine* engine);
  static SloEngine* Global();

 private:
  /// One second of tallies. `sec` tags which wall second currently owns
  /// the slot; a recorder seeing a stale tag claims the slot via CAS and
  /// zeroes the counts.
  struct Bucket {
    std::atomic<uint64_t> sec{~uint64_t{0}};
    std::atomic<uint64_t> good{0};
    std::atomic<uint64_t> total{0};
  };

  struct Objective {
    explicit Objective(const SloObjectiveSpec& s)
        : spec(s), buckets(s.window_seconds + 1) {}
    SloObjectiveSpec spec;
    /// Ring indexed by second % size; +1 slot so the bucket being
    /// reclaimed for "now" never aliases the oldest in-window second.
    std::vector<Bucket> buckets;

    void RecordSample(uint64_t now_sec, bool good);
    /// Good/total over [now_sec - window + 1, now_sec].
    void Tally(uint64_t now_sec, uint64_t window, uint64_t* good,
               uint64_t* total) const;
  };

  /// Immutable snapshot of registered objectives. Recorders load it with
  /// one acquire and scan without locking; AddObjective swaps in a new
  /// snapshot (the handful of superseded snapshots are intentionally
  /// leaked — registration happens a few times at startup).
  struct Index {
    std::vector<Objective*> items;
  };

  Objective* Find(const std::string& name) const;

  mutable std::mutex mu_;  // Serializes AddObjective.
  std::vector<std::unique_ptr<Objective>> objectives_;
  std::atomic<Index*> index_{nullptr};
};

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_SLO_H_
