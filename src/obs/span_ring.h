// SpanRing: bounded retention buffer of the most recently *completed* trace
// spans, feeding the /tracez exposition endpoint. The thread-local span
// buffers in trace.h are drain-once (CollectSpans moves events out for a
// report at end of run); an operator hitting /tracez mid-run instead wants
// "the last few thousand spans, right now, without disturbing collection".
//
// The ring is lock-sharded: writers pick a shard by their dense thread id,
// so concurrent SpanEnd calls on different threads almost never contend on
// one mutex, and each shard overwrites its own oldest entry on wrap-around
// (evictions are counted in obs.spans_evicted — retention working as
// designed, distinct from obs.spans_dropped which counts spans lost
// outright). Readers lock shards one at a time and merge by end time, so a
// scrape never stalls recording for longer than one shard copy.
//
// Install a ring as the process-wide retention sink with InstallGlobal();
// trace.h's SpanEnd then feeds it whenever tracing is enabled. Span names
// are string literals (the SpanEvent contract), so retained events stay
// valid indefinitely.

#ifndef OCT_OBS_SPAN_RING_H_
#define OCT_OBS_SPAN_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace oct {
namespace obs {

class SpanRing {
 public:
  /// Total retained-span capacity, split evenly over the shards (rounded up
  /// so capacity per shard is at least 1).
  explicit SpanRing(size_t capacity = 4096);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Appends a completed span, overwriting the shard's oldest entry when
  /// full. Lock-sharded: concurrent writers on different threads take
  /// different mutexes.
  void Add(const SpanEvent& event);

  /// The most recently completed spans (newest first), at most `max_spans`.
  /// Merges every shard under its lock; safe against concurrent Add.
  std::vector<SpanEvent> Latest(size_t max_spans) const;

  /// Spans ever Add()ed / overwritten by wrap-around.
  uint64_t total_added() const {
    return total_added_.load(std::memory_order_relaxed);
  }
  uint64_t total_evicted() const {
    return total_evicted_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return num_shards_ * per_shard_; }

  /// Installs `ring` (may be nullptr to uninstall) as the sink SpanEnd
  /// feeds. The ring must outlive its installation; the caller owns it.
  static void InstallGlobal(SpanRing* ring);
  static SpanRing* Global();

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<SpanEvent> events;  // Ring storage, size <= per_shard.
    size_t next = 0;                // Overwrite cursor once full.
  };

  static constexpr size_t kShards = 8;

  const size_t num_shards_;
  const size_t per_shard_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> total_added_{0};
  std::atomic<uint64_t> total_evicted_{0};
};

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_SPAN_RING_H_
