#include "obs/watchdog.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace oct {
namespace obs {

namespace {
std::atomic<Watchdog*> g_watchdog{nullptr};
}  // namespace

void Watchdog::RegisterPump(const std::string& name,
                            double stall_threshold_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& pump : pumps_) {
    if (pump->name == name) {
      pump->stall_threshold_seconds = stall_threshold_seconds;
      return;
    }
  }
  auto pump = std::make_unique<Pump>();
  pump->name = name;
  pump->stall_threshold_seconds = stall_threshold_seconds;
  pump->beat_counter = MetricsRegistry::Default()->GetCounter(
      "obs.pump." + name + ".beats",
      "Heartbeats recorded by this background pump");
  pumps_.push_back(std::move(pump));
  Index* next = new Index();
  next->items.reserve(pumps_.size());
  for (const auto& p : pumps_) next->items.push_back(p.get());
  index_.store(next, std::memory_order_release);
}

Watchdog::Pump* Watchdog::Find(const std::string& name) const {
  const Index* index = index_.load(std::memory_order_acquire);
  if (index == nullptr) return nullptr;
  for (Pump* pump : index->items) {
    if (pump->name == name) return pump;
  }
  return nullptr;
}

void Watchdog::Beat(const std::string& name) {
  Pump* pump = Find(name);
  if (pump == nullptr) return;
  pump->last_beat_ns.store(TraceNowNanos(), std::memory_order_relaxed);
  pump->beats.fetch_add(1, std::memory_order_relaxed);
  pump->beat_counter->Increment();
}

std::vector<PumpStatus> Watchdog::Check() const {
  std::vector<PumpStatus> out;
  const Index* index = index_.load(std::memory_order_acquire);
  if (index == nullptr) return out;
  const uint64_t now_ns = TraceNowNanos();
  out.reserve(index->items.size());
  for (const Pump* pump : index->items) {
    PumpStatus status;
    status.name = pump->name;
    status.beats = pump->beats.load(std::memory_order_relaxed);
    status.stall_threshold_seconds = pump->stall_threshold_seconds;
    const uint64_t last = pump->last_beat_ns.load(std::memory_order_relaxed);
    if (status.beats > 0) {
      status.age_seconds =
          now_ns > last ? static_cast<double>(now_ns - last) * 1e-9 : 0.0;
      status.stalled = status.age_seconds > pump->stall_threshold_seconds;
    }
    out.push_back(std::move(status));
  }
  return out;
}

bool Watchdog::AnyStalled() const {
  for (const PumpStatus& status : Check()) {
    if (status.stalled) return true;
  }
  return false;
}

void Watchdog::InstallGlobal(Watchdog* dog) {
  g_watchdog.store(dog, std::memory_order_release);
}

Watchdog* Watchdog::Global() {
  return g_watchdog.load(std::memory_order_acquire);
}

void WatchdogBeat(const std::string& name) {
  Watchdog* dog = Watchdog::Global();
  if (dog != nullptr) dog->Beat(name);
}

}  // namespace obs
}  // namespace oct
