// SlowLog: bounded retention ring of the requests the tail sampler decided
// were worth keeping — slow (past the latency threshold), shed, degraded,
// or errored. Each entry carries what an operator needs to act on a bad
// request without replaying it: the query text, the tree version it was
// scored against, its trace id (linking to /tracez?trace_id=), and the
// per-stage latency breakdown (queue / dedup / index probe / score /
// serialize, microseconds).
//
// Promotion is rare by construction (the whole point of tail sampling), so
// a single mutex suffices; the recording hot path never touches this —
// only TailSampler::FinishTrace does, and only on promotion.

#ifndef OCT_OBS_SLOW_LOG_H_
#define OCT_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace oct {
namespace obs {

/// Why a finished trace was promoted. Ordered by severity: when several
/// apply, the worst one labels the entry.
enum class TailReason : uint8_t { kSlow, kDegraded, kShed, kError };

const char* TailReasonName(TailReason reason);

/// One retained bad request.
struct SlowRequestEntry {
  uint64_t trace_id = 0;
  std::string query;
  uint64_t version = 0;  // Tree version scored against (0 = never scored).
  TailReason reason = TailReason::kSlow;
  double total_us = 0.0;
  /// Per-stage breakdown (microseconds). Stages a request never reached
  /// stay 0.
  double queue_us = 0.0;
  double resolve_us = 0.0;   // Result-set resolution (index probe).
  double score_us = 0.0;     // Category descent + ranking.
  double serialize_us = 0.0; // Response rendering (HTTP ingress only).
  bool deduped = false;      // Answer fanned out from a batch leader.
  bool shed = false;
  bool degraded = false;
  bool errored = false;
  uint64_t end_ns = 0;  // TraceNowNanos() when the request finished.
};

class SlowLog {
 public:
  explicit SlowLog(size_t capacity = 256);

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// Appends one promoted request, overwriting the oldest when full.
  void Add(SlowRequestEntry entry);

  /// Most recent entries (newest first), at most `max_entries`.
  std::vector<SlowRequestEntry> Latest(size_t max_entries) const;

  uint64_t total_added() const {
    return total_added_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Installs `log` (nullptr to uninstall) as the process-wide sink the
  /// tail sampler promotes into. Caller owns lifetime.
  static void InstallGlobal(SlowLog* log);
  static SlowLog* Global();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowRequestEntry> entries_;  // Ring storage, size <= capacity.
  size_t next_ = 0;                        // Overwrite cursor once full.
  std::atomic<uint64_t> total_added_{0};
};

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_SLOW_LOG_H_
