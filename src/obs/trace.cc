#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "obs/span_ring.h"

namespace oct {
namespace obs {

namespace {

/// Cap per thread so a forgotten enabled flag cannot grow without bound;
/// drops are counted in obs.spans_dropped rather than silently discarded.
constexpr size_t kMaxEventsPerThread = 1 << 20;

/// Cap on the exited-thread flush target: short-lived traced threads (pool
/// workers, one-shot helpers) all funnel their events here, so it needs the
/// same bound-and-count treatment as the live buffers.
constexpr size_t kMaxOrphanEvents = 1 << 20;

Counter* DroppedCounter() {
  static Counter* dropped = MetricsRegistry::Default()->GetCounter(
      "obs.spans_dropped",
      "Completed spans discarded because a trace buffer was full");
  return dropped;
}

struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> events;
  uint32_t tid = 0;
  uint32_t depth = 0;  // Touched only by the owning thread.
};

struct TraceState {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::vector<SpanEvent> orphans;  // Events of threads that have exited.
  uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

// Leaked: thread-exit hooks and exit handlers may outlive ordered statics.
TraceState* State() {
  static TraceState* state = new TraceState();
  return state;
}

/// Registers the calling thread's buffer for its lifetime; flushes finished
/// events into the orphan list on thread exit so they survive collection.
struct ThreadBufferHandle {
  ThreadBuffer* buffer;

  ThreadBufferHandle() : buffer(new ThreadBuffer()) {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    buffer->tid = state->next_tid++;
    state->buffers.push_back(buffer);
  }

  ~ThreadBufferHandle() {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const size_t room = state->orphans.size() < kMaxOrphanEvents
                              ? kMaxOrphanEvents - state->orphans.size()
                              : 0;
      const size_t take = std::min(room, buffer->events.size());
      state->orphans.insert(state->orphans.end(), buffer->events.begin(),
                            buffer->events.begin() + take);
      if (take < buffer->events.size()) {
        DroppedCounter()->Increment(buffer->events.size() - take);
      }
    }
    state->buffers.erase(
        std::remove(state->buffers.begin(), state->buffers.end(), buffer),
        state->buffers.end());
    delete buffer;
  }
};

ThreadBuffer* LocalBuffer() {
  thread_local ThreadBufferHandle handle;
  return handle.buffer;
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

uint64_t SpanStart() {
  ++LocalBuffer()->depth;
  return TraceNowNanos();
}

void SpanEnd(const char* name, uint64_t start_ns) {
  ThreadBuffer* buffer = LocalBuffer();
  const uint64_t end_ns = TraceNowNanos();
  const uint32_t depth = --buffer->depth;
  const SpanEvent event{name, start_ns, end_ns, depth, buffer->tid};
  // The retention ring (the /tracez source) is fed independently of the
  // collection buffers: it keeps only the most recent spans and never
  // rejects one, so a scrape sees fresh data even when collection lags.
  if (SpanRing* ring = SpanRing::Global()) ring->Add(event);
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    DroppedCounter()->Increment();
    return;
  }
  buffer->events.push_back(event);
}

}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - State()->epoch)
          .count());
}

std::vector<SpanEvent> CollectSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  std::vector<SpanEvent> out = std::move(state->orphans);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;  // Parents before children.
            });
  return out;
}

void ClearSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace obs
}  // namespace oct
