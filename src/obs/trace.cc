#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"

namespace oct {
namespace obs {

namespace {

/// Cap per thread so a forgotten enabled flag cannot grow without bound;
/// drops are counted in obs.spans_dropped rather than silently discarded.
constexpr size_t kMaxEventsPerThread = 1 << 20;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> events;
  uint32_t tid = 0;
  uint32_t depth = 0;  // Touched only by the owning thread.
};

struct TraceState {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::vector<SpanEvent> orphans;  // Events of threads that have exited.
  uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

// Leaked: thread-exit hooks and exit handlers may outlive ordered statics.
TraceState* State() {
  static TraceState* state = new TraceState();
  return state;
}

/// Registers the calling thread's buffer for its lifetime; flushes finished
/// events into the orphan list on thread exit so they survive collection.
struct ThreadBufferHandle {
  ThreadBuffer* buffer;

  ThreadBufferHandle() : buffer(new ThreadBuffer()) {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    buffer->tid = state->next_tid++;
    state->buffers.push_back(buffer);
  }

  ~ThreadBufferHandle() {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      state->orphans.insert(state->orphans.end(), buffer->events.begin(),
                            buffer->events.end());
    }
    state->buffers.erase(
        std::remove(state->buffers.begin(), state->buffers.end(), buffer),
        state->buffers.end());
    delete buffer;
  }
};

ThreadBuffer* LocalBuffer() {
  thread_local ThreadBufferHandle handle;
  return handle.buffer;
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

uint64_t SpanStart() {
  ++LocalBuffer()->depth;
  return TraceNowNanos();
}

void SpanEnd(const char* name, uint64_t start_ns) {
  ThreadBuffer* buffer = LocalBuffer();
  const uint64_t end_ns = TraceNowNanos();
  const uint32_t depth = --buffer->depth;
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    static Counter* dropped =
        MetricsRegistry::Default()->GetCounter("obs.spans_dropped");
    dropped->Increment();
    return;
  }
  buffer->events.push_back({name, start_ns, end_ns, depth, buffer->tid});
}

}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - State()->epoch)
          .count());
}

std::vector<SpanEvent> CollectSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  std::vector<SpanEvent> out = std::move(state->orphans);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;  // Parents before children.
            });
  return out;
}

void ClearSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace obs
}  // namespace oct
