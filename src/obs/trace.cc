#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "obs/span_ring.h"
#include "obs/tail_sampler.h"

namespace oct {
namespace obs {

namespace {

/// Cap per thread so a forgotten enabled flag cannot grow without bound;
/// drops are counted in obs.spans_dropped rather than silently discarded.
constexpr size_t kMaxEventsPerThread = 1 << 20;

/// Cap on the exited-thread flush target: short-lived traced threads (pool
/// workers, one-shot helpers) all funnel their events here, so it needs the
/// same bound-and-count treatment as the live buffers.
constexpr size_t kMaxOrphanEvents = 1 << 20;

Counter* DroppedCounter() {
  static Counter* dropped = MetricsRegistry::Default()->GetCounter(
      "obs.spans_dropped",
      "Completed spans discarded because a trace buffer was full");
  return dropped;
}

struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> events;
  uint32_t tid = 0;
  uint32_t depth = 0;  // Touched only by the owning thread.
};

struct TraceState {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  std::vector<SpanEvent> orphans;  // Events of threads that have exited.
  uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

// Leaked: thread-exit hooks and exit handlers may outlive ordered statics.
TraceState* State() {
  static TraceState* state = new TraceState();
  return state;
}

/// Registers the calling thread's buffer for its lifetime; flushes finished
/// events into the orphan list on thread exit so they survive collection.
/// Parenting survives the flush intact: events carry explicit
/// span_id/parent_id, so an orphaned child still points at its real parent
/// regardless of which buffer either ended up in.
struct ThreadBufferHandle {
  ThreadBuffer* buffer;

  ThreadBufferHandle() : buffer(new ThreadBuffer()) {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    buffer->tid = state->next_tid++;
    state->buffers.push_back(buffer);
  }

  ~ThreadBufferHandle() {
    TraceState* state = State();
    std::lock_guard<std::mutex> lock(state->mu);
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const size_t room = state->orphans.size() < kMaxOrphanEvents
                              ? kMaxOrphanEvents - state->orphans.size()
                              : 0;
      const size_t take = std::min(room, buffer->events.size());
      state->orphans.insert(state->orphans.end(), buffer->events.begin(),
                            buffer->events.begin() + take);
      if (take < buffer->events.size()) {
        DroppedCounter()->Increment(buffer->events.size() - take);
      }
    }
    state->buffers.erase(
        std::remove(state->buffers.begin(), state->buffers.end(), buffer),
        state->buffers.end());
    delete buffer;
  }
};

ThreadBuffer* LocalBuffer() {
  thread_local ThreadBufferHandle handle;
  return handle.buffer;
}

/// Routes one finished event to its sinks:
///   - sampled request context -> the tail sampler's pending buffer (the
///     verdict at FinishTrace decides whether it reaches the ring);
///   - `collect` (tracing was enabled when the span opened) -> the
///     retention ring (immediately — unsampled spans have no later
///     promotion step) + the collection buffers. Gating on the open-time
///     state keeps the contract that spans already open when the flag
///     flips still record on close.
void RouteEvent(const SpanEvent& event, bool collect) {
  bool pending = false;
  if (event.trace_id != 0 && internal::g_trace_context.sampled) {
    if (TailSampler* sampler = TailSampler::Global()) {
      sampler->Record(event);
      pending = true;
    }
  }
  if (!collect) return;  // Sampled-only span; the verdict owns retention.
  // Pending spans reach the ring on promotion; adding them here too would
  // double-count the same span in /tracez.
  if (!pending) {
    if (SpanRing* ring = SpanRing::Global()) ring->Add(event);
  }
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    DroppedCounter()->Increment();
    return;
  }
  buffer->events.push_back(event);
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

uint64_t SpanStart(uint64_t* span_id, uint64_t* parent_id) {
  ++LocalBuffer()->depth;
  TraceContext& ctx = g_trace_context;
  *parent_id = ctx.span_id;
  *span_id = NextSpanId();
  // The thread's parent-span register: children opened inside this scope
  // (on this thread, or on threads this context is copied to) attach here.
  ctx.span_id = *span_id;
  return TraceNowNanos();
}

void SpanEnd(const char* name, uint64_t start_ns, uint64_t span_id,
             uint64_t parent_id, bool collect) {
  ThreadBuffer* buffer = LocalBuffer();
  const uint64_t end_ns = TraceNowNanos();
  const uint32_t depth = --buffer->depth;
  TraceContext& ctx = g_trace_context;
  // Pop the parent register. ScopedSpan destruction is LIFO per thread and
  // TraceContextScope saves/restores wholesale, so this stays consistent.
  ctx.span_id = parent_id;
  SpanEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  event.depth = depth;
  event.thread_id = buffer->tid;
  event.trace_id = ctx.trace_id;
  event.span_id = span_id;
  event.parent_id = parent_id;
  RouteEvent(event, collect);
}

}  // namespace internal

void RecordLinkedSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                      uint64_t parent_id) {
  ThreadBuffer* buffer = LocalBuffer();
  const TraceContext& ctx = internal::g_trace_context;
  const bool collect = TracingEnabled();
  if (!collect && !(ctx.sampled && ctx.trace_id != 0)) return;
  SpanEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  event.depth = buffer->depth;
  event.thread_id = buffer->tid;
  event.trace_id = ctx.trace_id;
  event.span_id = internal::NextSpanId();
  event.parent_id = parent_id;
  RouteEvent(event, collect);
}

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - State()->epoch)
          .count());
}

std::vector<SpanEvent> CollectSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  std::vector<SpanEvent> out = std::move(state->orphans);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;  // Parents before children.
            });
  return out;
}

void ClearSpans() {
  TraceState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->orphans.clear();
  for (ThreadBuffer* buffer : state->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace obs
}  // namespace oct
