#include "obs/tail_sampler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace oct {
namespace obs {

namespace {

std::atomic<TailSampler*> g_tail_sampler{nullptr};

Counter* StartedCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.tail.traces_started", "Request traces opened by the tail sampler");
  return c;
}
Counter* PromotedCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.tail.traces_promoted",
      "Traces retained because they finished slow, shed, degraded, or "
      "errored");
  return c;
}
Counter* DiscardedCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.tail.traces_discarded",
      "Traces dropped at completion because nothing went wrong");
  return c;
}
Counter* EvictedCounter() {
  static Counter* c = MetricsRegistry::Default()->GetCounter(
      "obs.tail.traces_evicted",
      "Pending traces evicted before completion (shard bound hit)");
  return c;
}

}  // namespace

TailSampler::TailSampler(TailSamplerOptions options)
    : options_(std::move(options)), shards_(kShards) {}

void TailSampler::StartTrace(uint64_t trace_id) {
  if (trace_id == 0) return;
  started_.fetch_add(1, std::memory_order_relaxed);
  StartedCounter()->Increment();
  Shard& shard = ShardFor(trace_id);
  uint64_t evicted_now = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.pending.try_emplace(trace_id);
    if (!inserted) return;  // Already open (double-start); keep existing.
    shard.fifo.push_back(trace_id);
    while (shard.pending.size() > options_.max_pending_per_shard &&
           !shard.fifo.empty()) {
      const uint64_t oldest = shard.fifo.front();
      shard.fifo.pop_front();
      if (shard.pending.erase(oldest) != 0) ++evicted_now;
    }
  }
  if (evicted_now != 0) {
    evicted_.fetch_add(evicted_now, std::memory_order_relaxed);
    EvictedCounter()->Increment(evicted_now);
  }
}

void TailSampler::Record(const SpanEvent& event) {
  if (event.trace_id == 0) return;
  Shard& shard = ShardFor(event.trace_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.pending.find(event.trace_id);
  if (it == shard.pending.end()) return;  // Evicted or never started.
  if (it->second.spans.size() >= options_.max_spans_per_trace) {
    ++it->second.dropped_spans;
    return;
  }
  it->second.spans.push_back(event);
}

bool TailSampler::FinishTrace(uint64_t trace_id, const TraceFinish& fin) {
  if (trace_id == 0) return false;
  PendingTrace trace;
  bool found = false;
  {
    Shard& shard = ShardFor(trace_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.pending.find(trace_id);
    if (it != shard.pending.end()) {
      trace = std::move(it->second);
      shard.pending.erase(it);
      found = true;
      // The fifo entry goes stale; eviction skips ids already erased.
    }
  }
  if (!WouldPromote(fin)) {
    discarded_.fetch_add(1, std::memory_order_relaxed);
    DiscardedCounter()->Increment();
    return false;
  }
  promoted_.fetch_add(1, std::memory_order_relaxed);
  PromotedCounter()->Increment();

  // Promote spans into the retention ring feeding /tracez. A shed request
  // may legitimately have no spans (rejected at admission); the slow-log
  // entry still records it.
  if (found && !trace.spans.empty()) {
    SpanRing* ring = options_.ring != nullptr ? options_.ring
                                              : SpanRing::Global();
    if (ring != nullptr) {
      for (const SpanEvent& e : trace.spans) ring->Add(e);
    }
  }

  SlowLog* log =
      options_.slow_log != nullptr ? options_.slow_log : SlowLog::Global();
  if (log != nullptr) {
    SlowRequestEntry entry;
    entry.trace_id = trace_id;
    entry.query = fin.query;
    entry.version = fin.version;
    entry.total_us = fin.total_us;
    entry.queue_us = fin.queue_us;
    entry.resolve_us = fin.resolve_us;
    entry.score_us = fin.score_us;
    entry.serialize_us = fin.serialize_us;
    entry.deduped = fin.deduped;
    entry.shed = fin.shed;
    entry.degraded = fin.degraded;
    entry.errored = fin.errored;
    entry.end_ns = TraceNowNanos();
    // Worst condition labels the entry.
    if (fin.errored) {
      entry.reason = TailReason::kError;
    } else if (fin.shed) {
      entry.reason = TailReason::kShed;
    } else if (fin.degraded) {
      entry.reason = TailReason::kDegraded;
    } else {
      entry.reason = TailReason::kSlow;
    }
    log->Add(std::move(entry));
  }
  return true;
}

void TailSampler::InstallGlobal(TailSampler* sampler) {
  g_tail_sampler.store(sampler, std::memory_order_release);
}

TailSampler* TailSampler::Global() {
  return g_tail_sampler.load(std::memory_order_acquire);
}

TraceContext StartRequestTrace(uint64_t deadline_ns) {
  TraceContext ctx;
  ctx.trace_id = internal::NextTraceId();
  ctx.span_id = 0;
  ctx.deadline_ns = deadline_ns;
  TailSampler* sampler = TailSampler::Global();
  ctx.sampled = sampler != nullptr;
  if (sampler != nullptr) sampler->StartTrace(ctx.trace_id);
  return ctx;
}

bool FinishRequestTrace(const TraceContext& ctx, const TraceFinish& fin) {
  if (!ctx.valid()) return false;
  TailSampler* sampler = TailSampler::Global();
  if (sampler == nullptr) return false;
  return sampler->FinishTrace(ctx.trace_id, fin);
}

}  // namespace obs
}  // namespace oct
