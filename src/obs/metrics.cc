#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

namespace oct {
namespace obs {

namespace internal {

size_t AssignThreadIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Relaxed fetch_add for atomic<double> (CAS loop; C++20 fetch_add on
/// floating atomics is not universally lock-free, the loop always is).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name) : name_(std::move(name)) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // Negatives and NaN clamp to bucket 0.
  const uint64_t truncated = static_cast<uint64_t>(
      std::min(value, static_cast<double>(std::numeric_limits<int64_t>::max())));
  // value in [2^(i-1), 2^i) has bit_width i.
  return std::min<size_t>(std::bit_width(truncated), kNumBuckets - 1);
}

double Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double Histogram::BucketUpperBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  value = std::max(value, 0.0);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&sum_, value);
  internal::AtomicMinDouble(&min_, value);
  internal::AtomicMaxDouble(&max_, value);
}

void Histogram::RecordWithExemplar(double value, uint64_t trace_id) {
  Record(value);
  if (trace_id == 0 || std::isnan(value)) return;
  ExemplarSlot& slot = exemplars_[BucketIndex(std::max(value, 0.0))];
  slot.value.store(value, std::memory_order_relaxed);
  slot.timestamp.store(
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  has_exemplars_.store(true, std::memory_order_release);
}

double Histogram::Percentile(double p) const {
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double observed_min = min_.load(std::memory_order_relaxed);
  const double observed_max = max_.load(std::memory_order_relaxed);
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cumulative + counts[i]) >= target) {
      const double lo = BucketLowerBound(i);
      // The overflow bucket has no finite upper bound; the observed max is
      // the tightest one available.
      const double hi =
          i + 1 == kNumBuckets ? std::max(observed_max, lo) : BucketUpperBound(i);
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      const double estimate = lo + fraction * (hi - lo);
      return std::clamp(estimate, observed_min, observed_max);
    }
    cumulative += counts[i];
  }
  return observed_max;
}

std::vector<CumulativeBucket> HistogramSnapshot::CumulativeBuckets() const {
  std::vector<CumulativeBucket> out;
  uint64_t cumulative = 0;
  // The terminal power-of-two bucket absorbs every value above its lower
  // bound, so its finite upper bound would lie; its counts surface only in
  // the +Inf entry.
  for (size_t i = 0; i + 1 < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    out.push_back({Histogram::BucketUpperBound(i), cumulative, i});
  }
  out.push_back({std::numeric_limits<double>::infinity(), count,
                 buckets.empty() ? 0 : buckets.size() - 1});
  return out;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  snap.p50 = Percentile(50.0);
  snap.p95 = Percentile(95.0);
  snap.p99 = Percentile(99.0);
  if (has_exemplars_.load(std::memory_order_acquire)) {
    snap.exemplars.resize(kNumBuckets);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.exemplars[i].trace_id =
          exemplars_[i].trace_id.load(std::memory_order_relaxed);
      snap.exemplars[i].value =
          exemplars_[i].value.load(std::memory_order_relaxed);
      snap.exemplars[i].timestamp =
          exemplars_[i].timestamp.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) {
    e.trace_id.store(0, std::memory_order_relaxed);
    e.value.store(0.0, std::memory_order_relaxed);
    e.timestamp.store(0.0, std::memory_order_relaxed);
  }
  has_exemplars_.store(false, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  if (slot->help_.empty() && !help.empty()) slot->help_ = help;
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  if (slot->help_.empty() && !help.empty()) slot->help_ = help;
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(name));
  if (slot->help_.empty() && !help.empty()) slot->help_ = help;
  if (slot->unit_.empty() && !unit.empty()) slot->unit_ = unit;
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->Value());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->Value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->Snapshot());
  }
  return out;
}

MetricsRegistry::MetricMeta MetricsRegistry::MetaFor(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return {it->second->help_, ""};
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return {it->second->help_, ""};
  }
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return {it->second->help_, it->second->unit_};
  }
  return {};
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace oct
