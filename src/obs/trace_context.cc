#include "obs/trace_context.h"

#include <atomic>
#include <cstdio>

namespace oct {
namespace obs {

namespace internal {

thread_local TraceContext g_trace_context;

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// splitmix64 finalizer: sequential counters become well-spread 64-bit ids
/// so truncated hex prefixes of concurrent traces still differ.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  uint64_t id = 0;
  while (id == 0) {
    id = Mix64(next.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

}  // namespace internal

std::string TraceIdToHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

uint64_t TraceIdFromHex(const std::string& hex) {
  if (hex.empty()) return 0;
  size_t pos = 0;
  if (hex.size() > 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    pos = 2;
  }
  uint64_t value = 0;
  for (; pos < hex.size(); ++pos) {
    const char c = hex[pos];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
    value = (value << 4) | digit;
  }
  return value;
}

}  // namespace obs
}  // namespace oct
