#include "obs/slo.h"

#include <algorithm>

#include "obs/trace.h"

namespace oct {
namespace obs {

namespace {

std::atomic<SloEngine*> g_slo_engine{nullptr};

uint64_t NowSeconds() { return TraceNowNanos() / 1000000000ULL; }

/// Burn rate for one window: bad fraction over error budget. 0 when the
/// window is empty (no evidence = no alarm) or the budget is degenerate.
double BurnRate(uint64_t good, uint64_t total, double target) {
  if (total == 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0) return 0.0;
  const double bad = static_cast<double>(total - good) /
                     static_cast<double>(total);
  return bad / budget;
}

}  // namespace

void SloEngine::Objective::RecordSample(uint64_t now_sec, bool good) {
  Bucket& b = buckets[now_sec % buckets.size()];
  uint64_t tag = b.sec.load(std::memory_order_relaxed);
  if (tag != now_sec) {
    // Claim the slot for this second. The winner zeroes the counts; a
    // sample racing the reset can land in the zeroed-out window or be
    // wiped — one event per objective per second-boundary, documented
    // as lossy in the header.
    if (b.sec.compare_exchange_strong(tag, now_sec,
                                      std::memory_order_relaxed)) {
      b.good.store(0, std::memory_order_relaxed);
      b.total.store(0, std::memory_order_relaxed);
    }
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (good) b.good.fetch_add(1, std::memory_order_relaxed);
}

void SloEngine::Objective::Tally(uint64_t now_sec, uint64_t window,
                                 uint64_t* good, uint64_t* total) const {
  *good = 0;
  *total = 0;
  const uint64_t span = std::min<uint64_t>(window, buckets.size() - 1);
  const uint64_t oldest = now_sec >= span - 1 ? now_sec - (span - 1) : 0;
  for (const Bucket& b : buckets) {
    const uint64_t sec = b.sec.load(std::memory_order_relaxed);
    if (sec < oldest || sec > now_sec) continue;  // Stale or unclaimed slot.
    *good += b.good.load(std::memory_order_relaxed);
    *total += b.total.load(std::memory_order_relaxed);
  }
}

void SloEngine::AddObjective(const SloObjectiveSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  objectives_.push_back(std::make_unique<Objective>(spec));
  Index* next = new Index();
  next->items.reserve(objectives_.size());
  for (const auto& obj : objectives_) next->items.push_back(obj.get());
  // Superseded snapshots leak by design; see the header.
  index_.store(next, std::memory_order_release);
}

SloEngine::Objective* SloEngine::Find(const std::string& name) const {
  const Index* index = index_.load(std::memory_order_acquire);
  if (index == nullptr) return nullptr;
  for (Objective* obj : index->items) {
    if (obj->spec.name == name) return obj;
  }
  return nullptr;
}

void SloEngine::Record(const std::string& name, bool good) {
  Objective* obj = Find(name);
  if (obj == nullptr) return;
  obj->RecordSample(NowSeconds(), good);
}

void SloEngine::RecordLatency(const std::string& name, double us) {
  Objective* obj = Find(name);
  if (obj == nullptr) return;
  obj->RecordSample(NowSeconds(), us <= obj->spec.latency_threshold_us);
}

std::vector<SloStatus> SloEngine::Check() const {
  std::vector<SloStatus> out;
  const Index* index = index_.load(std::memory_order_acquire);
  if (index == nullptr) return out;
  const uint64_t now_sec = NowSeconds();
  out.reserve(index->items.size());
  for (const Objective* obj : index->items) {
    SloStatus status;
    status.name = obj->spec.name;
    status.description = obj->spec.description;
    status.target = obj->spec.target;
    status.window_seconds = obj->spec.window_seconds;
    status.short_window_seconds = obj->spec.short_window_seconds;
    status.burn_alert_threshold = obj->spec.burn_alert_threshold;
    obj->Tally(now_sec, obj->spec.window_seconds, &status.good,
               &status.total);
    status.burn_long = BurnRate(status.good, status.total, obj->spec.target);
    uint64_t short_good = 0;
    uint64_t short_total = 0;
    obj->Tally(now_sec, obj->spec.short_window_seconds, &short_good,
               &short_total);
    status.burn_short =
        BurnRate(short_good, short_total, obj->spec.target);
    status.alerting = status.burn_long > obj->spec.burn_alert_threshold &&
                      status.burn_short > obj->spec.burn_alert_threshold;
    out.push_back(std::move(status));
  }
  return out;
}

bool SloEngine::AnyAlerting() const {
  for (const SloStatus& status : Check()) {
    if (status.alerting) return true;
  }
  return false;
}

size_t SloEngine::num_objectives() const {
  const Index* index = index_.load(std::memory_order_acquire);
  return index == nullptr ? 0 : index->items.size();
}

void SloEngine::InstallGlobal(SloEngine* engine) {
  g_slo_engine.store(engine, std::memory_order_release);
}

SloEngine* SloEngine::Global() {
  return g_slo_engine.load(std::memory_order_acquire);
}

}  // namespace obs
}  // namespace oct
