// Exporters for obs metrics and trace spans.
//
// Two output formats:
//   - MetricsToJson / SpansToJson: structured JSON for dashboards and the
//     bench harness (OCT_BENCH_JSON).
//   - SpansToChromeTrace: Chrome trace event format, loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//
// All functions produce strings; WriteStringToFile handles the (only) IO.

#ifndef OCT_OBS_EXPORT_H_
#define OCT_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace oct {
namespace obs {

/// Minimal streaming JSON writer (object/array nesting, escaping, number
/// formatting). Used by the exporters and by bench_util; not a parser.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& key);
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/inf).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  /// Splices a pre-serialized JSON value verbatim (e.g. a nested document).
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void BeforeValue();
  std::string out_;
  /// One entry per open container: true while the container already holds at
  /// least one element (so the next element needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Serializes every metric in `registry` as
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
/// mean,p50,p95,p99,buckets:[{le,count},...]}}}. Empty buckets are omitted.
std::string MetricsToJson(const MetricsRegistry& registry);

/// Serializes spans in Chrome trace event format ("X" complete events).
std::string SpansToChromeTrace(const std::vector<SpanEvent>& events);

/// Per-name rollup of a span collection.
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;

  double TotalMillis() const { return static_cast<double>(total_ns) * 1e-6; }
};

/// Aggregates spans by name, sorted by descending total time.
std::vector<SpanAggregate> AggregateSpans(const std::vector<SpanEvent>& events);

/// Serializes AggregateSpans(events) as
/// [{"name":...,"count":...,"total_ms":...},...].
std::string SpansToJson(const std::vector<SpanEvent>& events);

/// Fraction of the first `root_name` span's duration covered by its direct
/// children (same thread, depth + 1, inside its time range). Returns 0 when
/// the root is missing or has zero duration. Used to check that phase spans
/// account for (nearly) all of a run's wall time.
double SpanTreeCoverage(const std::vector<SpanEvent>& events,
                        const char* root_name);

/// Writes `content` to `path`, truncating. Returns a non-OK status on IO
/// failure.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_EXPORT_H_
