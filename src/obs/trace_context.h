// TraceContext: the per-request identity that turns thread-local spans into
// one cross-thread tree. A context is created at request ingress (the
// /route handler, or Router::Submit when a request arrives without one),
// carried *explicitly* across every async boundary — the router's bounded
// queue, batch dedup fan-out, delta/store publish pumps, ThreadPool tasks —
// and installed on whichever thread does the work via TraceContextScope.
// Every span finished while a context is installed carries the context's
// trace_id plus an explicit span_id/parent_id pair, so /tracez?trace_id=
// reassembles the request's full tree no matter how many threads it
// crossed.
//
//   // ingress
//   obs::TraceContext ctx = obs::StartRequestTrace(deadline_ns);
//   obs::TraceContextScope scope(ctx);      // install on this thread
//   ...
//   // handoff: capture obs::CurrentTraceContext() into the queue item,
//   // re-install with TraceContextScope on the worker.
//
// The context also carries the sampling decision (tail_sampler.h): sampled
// requests record their spans into the pending buffer until the request
// finishes and the tail verdict (slow/shed/degraded/errored?) decides
// whether the trace is retained or discarded.
//
// Cost contract: propagation is one TLS copy per handoff and one TLS
// read + branch per span site — cheap enough to leave always-on in the
// route hot path (the router bench gates this at <= 3% of route latency).

#ifndef OCT_OBS_TRACE_CONTEXT_H_
#define OCT_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace oct {
namespace obs {

/// The propagated per-request context. POD by design: cheap to copy into
/// queue items and task closures. `span_id` is the id of the innermost
/// open span on the *installing* thread — the parent new spans attach to.
struct TraceContext {
  /// 0 = no request trace (spans still get ids, parented per thread).
  uint64_t trace_id = 0;
  /// Current parent: the span new child spans attach under.
  uint64_t span_id = 0;
  /// Tail-sampling decision: record spans into the pending buffer.
  bool sampled = false;
  /// Absolute deadline in TraceNowNanos() time; 0 = none. Carried for
  /// cross-thread deadline visibility, not enforced here (CancelToken is).
  uint64_t deadline_ns = 0;

  bool valid() const { return trace_id != 0; }
};

namespace internal {
/// The calling thread's installed context. Direct TLS so the span fast
/// path pays one thread-local address computation, not a function call.
extern thread_local TraceContext g_trace_context;

/// Fresh process-unique span id (never 0).
uint64_t NextSpanId();

/// Fresh process-unique trace id (never 0; bit-mixed so ids from the same
/// process don't collide into adjacent /tracez filters).
uint64_t NextTraceId();
}  // namespace internal

/// The context installed on the calling thread ({} when none).
inline const TraceContext& CurrentTraceContext() {
  return internal::g_trace_context;
}

/// Installs `ctx` on the calling thread for the scope's lifetime and
/// restores the previous context (including its parent-span register) on
/// exit. Use at every async boundary where work continues on this thread
/// on behalf of a request started elsewhere.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : saved_(internal::g_trace_context) {
    internal::g_trace_context = ctx;
  }
  ~TraceContextScope() { internal::g_trace_context = saved_; }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Lower-case hex rendering of a trace id — the exchange format shared by
/// /tracez?trace_id=, /slowz, and OpenMetrics exemplars.
std::string TraceIdToHex(uint64_t trace_id);

/// Parses TraceIdToHex output (with or without a 0x prefix); 0 on garbage.
uint64_t TraceIdFromHex(const std::string& hex);

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_TRACE_CONTEXT_H_
