#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

namespace oct {
namespace obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Comma (if any) was written with the key.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

namespace {

void WriteHistogram(JsonWriter* w, const HistogramSnapshot& snap,
                    const MetricsRegistry::MetricMeta& meta) {
  w->BeginObject();
  if (!meta.help.empty()) w->Key("help").String(meta.help);
  if (!meta.unit.empty()) w->Key("unit").String(meta.unit);
  w->Key("count").Uint(snap.count);
  w->Key("sum").Double(snap.sum);
  w->Key("min").Double(snap.min);
  w->Key("max").Double(snap.max);
  w->Key("mean").Double(snap.Mean());
  w->Key("p50").Double(snap.p50);
  w->Key("p95").Double(snap.p95);
  w->Key("p99").Double(snap.p99);
  // Cumulative (Prometheus-style) buckets: `count` observations were <= le;
  // the terminal bucket has le "+Inf" (serialized as a string — JSON has no
  // infinity) and carries the total count.
  w->Key("buckets").BeginArray();
  for (const CumulativeBucket& bucket : snap.CumulativeBuckets()) {
    w->BeginObject();
    if (std::isinf(bucket.le)) {
      w->Key("le").String("+Inf");
    } else {
      w->Key("le").Double(bucket.le);
    }
    w->Key("count").Uint(bucket.count);
    // Exemplar breadcrumb: a trace id that landed in this bucket, linking
    // the dashboard's p99 bar to /tracez?trace_id=.
    if (bucket.index < snap.exemplars.size() &&
        snap.exemplars[bucket.index].trace_id != 0) {
      const Exemplar& ex = snap.exemplars[bucket.index];
      w->Key("exemplar").BeginObject();
      w->Key("trace_id").String(TraceIdToHex(ex.trace_id));
      w->Key("value").Double(ex.value);
      w->Key("timestamp").Double(ex.timestamp);
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MetricsToJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry.CounterValues()) {
    w.Key(name).Uint(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : registry.GaugeValues()) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, snap] : registry.HistogramValues()) {
    w.Key(name);
    WriteHistogram(&w, snap, registry.MetaFor(name));
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// Span export
// ---------------------------------------------------------------------------

std::string SpansToChromeTrace(const std::vector<SpanEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const SpanEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name == nullptr ? "?" : e.name);
    w.Key("ph").String("X");
    w.Key("cat").String("oct");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<int64_t>(e.thread_id));
    w.Key("ts").Double(static_cast<double>(e.start_ns) * 1e-3);
    w.Key("dur").Double(e.DurationMicros());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<SpanEvent>& events) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanEvent& e : events) {
    if (e.name == nullptr) continue;
    SpanAggregate& agg = by_name[e.name];
    if (agg.count == 0) agg.name = e.name;
    ++agg.count;
    agg.total_ns += e.end_ns - e.start_ns;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return out;
}

std::string SpansToJson(const std::vector<SpanEvent>& events) {
  JsonWriter w;
  w.BeginArray();
  for (const SpanAggregate& agg : AggregateSpans(events)) {
    w.BeginObject();
    w.Key("name").String(agg.name);
    w.Key("count").Uint(agg.count);
    w.Key("total_ms").Double(agg.TotalMillis());
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

double SpanTreeCoverage(const std::vector<SpanEvent>& events,
                        const char* root_name) {
  const SpanEvent* root = nullptr;
  for (const SpanEvent& e : events) {
    if (e.name != nullptr && std::string_view(e.name) == root_name) {
      root = &e;
      break;
    }
  }
  if (root == nullptr || root->end_ns <= root->start_ns) return 0.0;
  uint64_t covered_ns = 0;
  if (root->span_id != 0) {
    // Explicit parenting: direct children name the root's span id, no
    // matter which thread or buffer they finished on (a child flushed to
    // the orphan list by a pool thread's exit still counts).
    for (const SpanEvent& e : events) {
      if (&e == root || e.parent_id != root->span_id) continue;
      covered_ns += e.end_ns - e.start_ns;
    }
  } else {
    // Hand-built events without span ids (older exports, test fixtures):
    // fall back to the same-thread depth + time-containment heuristic.
    for (const SpanEvent& e : events) {
      if (&e == root) continue;
      if (e.thread_id != root->thread_id) continue;
      if (e.depth != root->depth + 1) continue;
      if (e.start_ns < root->start_ns || e.end_ns > root->end_ns) continue;
      covered_ns += e.end_ns - e.start_ns;
    }
  }
  return static_cast<double>(covered_ns) /
         static_cast<double>(root->end_ns - root->start_ns);
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("short write to: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace oct
