#include "obs/slow_log.h"

#include <algorithm>
#include <utility>

namespace oct {
namespace obs {

namespace {
std::atomic<SlowLog*> g_slow_log{nullptr};
}  // namespace

const char* TailReasonName(TailReason reason) {
  switch (reason) {
    case TailReason::kSlow: return "slow";
    case TailReason::kDegraded: return "degraded";
    case TailReason::kShed: return "shed";
    case TailReason::kError: return "error";
  }
  return "?";
}

SlowLog::SlowLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  entries_.reserve(capacity_);
}

void SlowLog::Add(SlowRequestEntry entry) {
  total_added_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  entries_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowRequestEntry> SlowLog::Latest(size_t max_entries) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowRequestEntry> out;
  if (entries_.empty()) return out;
  const size_t n = std::min(max_entries, entries_.size());
  out.reserve(n);
  // Newest first: walk backwards from the cursor (the cursor points at the
  // oldest entry once the ring has wrapped).
  const size_t size = entries_.size();
  const size_t newest =
      size < capacity_ ? size - 1 : (next_ + capacity_ - 1) % capacity_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(entries_[(newest + size - i) % size]);
  }
  return out;
}

void SlowLog::InstallGlobal(SlowLog* log) {
  g_slow_log.store(log, std::memory_order_release);
}

SlowLog* SlowLog::Global() {
  return g_slow_log.load(std::memory_order_acquire);
}

}  // namespace obs
}  // namespace oct
