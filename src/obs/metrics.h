// MetricsRegistry: named counters, gauges, and fixed-bucket latency
// histograms for the whole pipeline. Designed so an instrumented hot path
// costs roughly one cache line of traffic:
//
//   - Counter increments go to one of kShards cacheline-aligned shards
//     (picked by a thread-local id) with a relaxed fetch_add, so concurrent
//     recorders never contend on a single line.
//   - Gauges are one relaxed atomic word.
//   - Histograms use power-of-two buckets; Record() is a bit-scan plus a
//     relaxed bucket increment (sum/min/max are relaxed CAS loops).
//
// Reads (Value()/Snapshot()) sum over shards and are individually exact but
// not mutually consistent — the dashboard/export contract, same as the old
// serve::ServeStats. Metric objects are owned by their registry and live as
// long as it does; instrumentation sites cache the pointer in a function-
// local static:
//
//   static obs::Counter* runs =
//       obs::MetricsRegistry::Default()->GetCounter("ctcr.runs");
//   runs->Increment();

#ifndef OCT_OBS_METRICS_H_
#define OCT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace oct {
namespace obs {

namespace internal {
/// Assigns the calling thread's dense id (out of line; called once per
/// thread).
size_t AssignThreadIndex();

/// Small dense id of the calling thread. Inline so an instrumented hot
/// path pays one TLS load, not a function call.
inline size_t ThreadIndex() {
  thread_local const size_t index = AssignThreadIndex();
  return index;
}
}  // namespace internal

/// Monotonic counter, sharded to keep concurrent increments off one line.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[internal::ThreadIndex() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards (each shard individually exact).
  uint64_t Value() const;

  const std::string& name() const { return name_; }
  /// Help string supplied at registration ("" when never provided).
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset();

  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
  std::string name_;
  std::string help_;
};

/// Last-writer-wins instantaneous value (queue depth, current version).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
  std::string name_;
  std::string help_;
};

/// One bucket of a cumulative (Prometheus-style) histogram view: `count`
/// observations were <= `le`. The final bucket has le = +infinity and
/// count = total. `index` is the source power-of-two bucket, so renderers
/// can pair the entry with that bucket's exemplar.
struct CumulativeBucket {
  double le = 0.0;
  uint64_t count = 0;
  size_t index = 0;
};

/// One sampled observation pinned to a histogram bucket: the trace id of a
/// request that landed there, for linking /metrics buckets to /tracez.
/// trace_id == 0 means the bucket has no exemplar yet.
struct Exemplar {
  uint64_t trace_id = 0;
  double value = 0.0;
  /// Unix wall-clock seconds of the observation (OpenMetrics timestamp).
  double timestamp = 0.0;
};

/// Plain-value view of a histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Count per bucket; bucket i covers [BucketLowerBound(i),
  /// BucketUpperBound(i)).
  std::vector<uint64_t> buckets;
  /// Latest exemplar per bucket (same indexing; trace_id == 0 = none).
  /// Empty when the histogram never saw RecordWithExemplar.
  std::vector<Exemplar> exemplars;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Cumulative-bucket conversion: one entry per non-empty power-of-two
  /// bucket, carrying the cumulative count of observations <= its upper
  /// bound, terminated by {+Inf, count}. (Empty buckets add no information
  /// to a cumulative series, so they are skipped to keep renders compact.)
  /// This is the exposition contract both the JSON and Prometheus
  /// renderers share.
  std::vector<CumulativeBucket> CumulativeBuckets() const;
};

/// Fixed power-of-two-bucket histogram for non-negative values (typically
/// latencies in microseconds). Bucket 0 is [0, 1); bucket i is
/// [2^(i-1), 2^i); the last bucket absorbs everything above.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(double value);

  /// Record() plus exemplar capture: remembers `trace_id` (last writer
  /// wins) on the bucket the value lands in, so exposition can link the
  /// bucket to the request's trace. trace_id == 0 records plainly.
  /// Exemplar fields are individually relaxed atomics — a concurrent read
  /// may pair one observation's id with another's value, which is
  /// harmless for a debugging breadcrumb and keeps the hot path free of
  /// locks and fences.
  void RecordWithExemplar(double value, uint64_t trace_id);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Percentile estimate (p in [0, 100]) by linear interpolation inside the
  /// containing bucket, clamped to the observed [min, max].
  double Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

  /// Inclusive lower / exclusive upper value bound of bucket i.
  static double BucketLowerBound(size_t i);
  static double BucketUpperBound(size_t i);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  /// Unit of recorded values ("us", "ms", ...; "" when never provided).
  const std::string& unit() const { return unit_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name);
  void Reset();

  static size_t BucketIndex(double value);

  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
    std::atomic<double> timestamp{0.0};
  };

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::array<ExemplarSlot, kNumBuckets> exemplars_;
  /// Flips once on the first exemplar so Snapshot() skips the 40-slot scan
  /// for histograms that never carry them.
  std::atomic<bool> has_exemplars_{false};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::string name_;
  std::string help_;
  std::string unit_;
};

/// Owner and lookup table of named metrics. Get* registers on first use and
/// returns the same pointer afterwards; pointers stay valid for the
/// registry's lifetime. Thread-safe.
///
/// `help` (and, for histograms, `unit`) are exposition metadata: the first
/// non-empty string supplied for a name sticks, so hot instrumentation
/// sites may keep calling the one-argument form while a single descriptive
/// registration elsewhere fills in the documentation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const std::string& unit = "");

  /// Zeroes every registered metric (bench harness: per-run deltas).
  void Reset();

  /// Name-sorted plain-value listings for exporters and tests.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

  /// Exposition metadata of one metric (any kind), read under the registry
  /// lock — the thread-safe way for renderers to pair Values() listings
  /// with help/unit strings. Empty fields when the name is unknown or was
  /// never described.
  struct MetricMeta {
    std::string help;
    std::string unit;
  };
  MetricMeta MetaFor(const std::string& name) const;

  /// Process-wide default registry (leaked singleton — safe to use from
  /// static destructors and exit handlers).
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace oct

#endif  // OCT_OBS_METRICS_H_
