// Agglomerative (hierarchical) clustering with average linkage (UPGMA) via
// the nearest-neighbor-chain algorithm: O(n^2) time on a condensed distance
// matrix. Average linkage is reducible, so NN-chain produces the exact
// UPGMA dendrogram. Used by CCT to derive the tree structure (Section 4)
// and by the IC-S / IC-Q baselines.

#ifndef OCT_CCT_AGGLOMERATIVE_H_
#define OCT_CCT_AGGLOMERATIVE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/cancel.h"

namespace oct {
namespace cct {

/// A binary merge tree over n leaves. Leaves are nodes 0..n-1; merge k
/// creates node n+k joining `left` and `right` at height `distance`.
struct Dendrogram {
  struct Merge {
    uint32_t left;
    uint32_t right;
    double distance;
  };
  size_t num_leaves = 0;
  /// n-1 merges in execution order (non-decreasing distance up to chain
  /// reordering; the structure is the exact UPGMA tree).
  std::vector<Merge> merges;

  /// Id of the root node (2n-2 for n > 1; 0 for a single leaf).
  uint32_t RootId() const {
    return num_leaves <= 1
               ? 0
               : static_cast<uint32_t>(num_leaves + merges.size() - 1);
  }
};

/// Linkage rules supported (the paper uses average linkage; the others are
/// provided for the "we have also examined other metrics" ablation).
enum class Linkage { kAverage, kSingle, kComplete };

/// Clusters n points given a pairwise distance oracle. O(n^2) memory.
/// When `cancel` (not owned; may be null) fires, the remaining clusters are
/// folded together without nearest-neighbor search — the dendrogram is
/// always complete (n-1 merges), its upper structure just degrades from
/// "nearest pairs" to "arbitrary order".
Dendrogram AgglomerativeCluster(
    size_t n, const std::function<double(size_t, size_t)>& distance,
    Linkage linkage = Linkage::kAverage,
    const fault::CancelToken* cancel = nullptr);

/// Same clustering over a precomputed condensed distance matrix
/// (upper triangle for i < j at index i*n - i*(i+1)/2 + (j-i-1), the
/// layout kernel::CondensedEuclideanDistances emits), consumed in place as
/// scratch. For n <= 1 `dist` may be empty. Equivalent to the oracle
/// overload with distance(i, j) == dist[...] — clustering is exactly the
/// same; only the matrix-filling step moves to the (parallel) caller.
Dendrogram AgglomerativeClusterCondensed(
    size_t n, std::vector<float> dist, Linkage linkage = Linkage::kAverage,
    const fault::CancelToken* cancel = nullptr);

}  // namespace cct
}  // namespace oct

#endif  // OCT_CCT_AGGLOMERATIVE_H_
