// CCT — the Clustering-based Category Tree algorithm (Algorithm 3,
// Section 4): embed the input sets by their similarity to every other set
// ("global context"), cluster the embeddings agglomeratively, use the
// dendrogram as the tree template (one leaf category per input set), then
// run the shared item-assignment procedure (Algorithm 2) and condense.

#ifndef OCT_CCT_CCT_H_
#define OCT_CCT_CCT_H_

#include <vector>

#include "cct/agglomerative.h"
#include "core/category_tree.h"
#include "core/input.h"
#include "core/item_assignment.h"
#include "core/similarity.h"
#include "fault/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace oct {
namespace kernel {
class ItemSetIndex;
}  // namespace kernel

namespace cct {

struct CctOptions {
  Linkage linkage = Linkage::kAverage;
  /// Disable to skip condensing — ablation knob.
  bool condense = true;
  /// Disable to bar the root from best-cover candidacy; see
  /// ctcr::CtcrOptions::root_cover_candidate.
  bool root_cover_candidate = true;
  /// Disable to skip the misc category (line 7). Per-component builders
  /// (oct::delta) add the universe-wide misc category exactly once on the
  /// spliced tree instead; see ctcr::CtcrOptions::add_misc_category.
  bool add_misc_category = true;
  /// Thread pool for the distance-matrix build (null: process default).
  ThreadPool* pool = nullptr;
  /// Prebuilt kernel::ItemSetIndex over the input (not owned; may be null,
  /// in which case CCT builds the inverted index itself). The resulting
  /// tree is identical either way.
  const kernel::ItemSetIndex* index = nullptr;
  /// Deadline/cancellation (not owned; may be null). On expiry the
  /// clustering fast-finishes its remaining merges and condensing is
  /// skipped; the result is always a valid, model-checked tree with
  /// `CctResult::status` reporting kDeadlineExceeded.
  const fault::CancelToken* cancel = nullptr;
};

struct CctResult {
  CategoryTree tree;
  AssignItemsStats assignment;
  double seconds_embed = 0.0;
  double seconds_cluster = 0.0;
  double seconds_assign = 0.0;
  /// OK, or kDeadlineExceeded when the build deadline expired and the tree
  /// is a (still valid) best-so-far result.
  Status status = Status::OK();
};

/// Runs CCT for any of the six variants. O(n^2) memory in the number of
/// input sets (the condensed distance matrix).
CctResult BuildCategoryTree(const OctInput& input, const Similarity& sim,
                            const CctOptions& options = {});

/// Converts a dendrogram over the input sets into a category tree: leaves
/// become categories dedicated to their input set, internal merge nodes
/// become unlabeled structural categories under the root. `cat_of` (if
/// non-null) receives the leaf category of each set.
CategoryTree TreeFromDendrogram(const OctInput& input,
                                const Dendrogram& dendrogram,
                                std::vector<NodeId>* cat_of);

}  // namespace cct
}  // namespace oct

#endif  // OCT_CCT_CCT_H_
