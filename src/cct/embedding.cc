#include "cct/embedding.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace oct {
namespace cct {

double Embeddings::Distance(size_t a, size_t b) const {
  // ||x - y||^2 = ||x||^2 + ||y||^2 - 2 <x, y>; rows are sorted by column.
  const auto& ra = rows_[a];
  const auto& rb = rows_[b];
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra[i].col < rb[j].col) {
      ++i;
    } else if (ra[i].col > rb[j].col) {
      ++j;
    } else {
      dot += static_cast<double>(ra[i].value) * rb[j].value;
      ++i;
      ++j;
    }
  }
  const double sq = norms_[a] + norms_[b] - 2.0 * dot;
  return sq > 0.0 ? std::sqrt(sq) : 0.0;
}

std::vector<float> Embeddings::Dense(size_t r, size_t dims) const {
  std::vector<float> out(dims, 0.0f);
  for (const Entry& e : rows_[r]) out[e.col] = e.value;
  return out;
}

Embeddings EmbedInputSets(const OctInput& input, const Similarity& sim,
                          const kernel::ItemSetIndex* index) {
  const size_t n = input.num_sets();
  Embeddings emb;
  emb.rows_.resize(n);
  emb.norms_.assign(n, 0.0);
  std::vector<std::vector<SetId>> local_inverted;
  const std::vector<std::vector<SetId>>* inverted;
  if (index != nullptr) {
    OCT_DCHECK(&index->input() == &input);
    inverted = &index->inverted();
  } else {
    local_inverted = input.BuildInvertedIndex();
    inverted = &local_inverted;
  }

  std::vector<uint32_t> inter(n, 0);
  std::vector<SetId> touched;
  for (SetId q = 0; q < n; ++q) {
    touched.clear();
    for (ItemId item : input.set(q).items) {
      for (SetId other : (*inverted)[item]) {
        if (inter[other] == 0) touched.push_back(other);
        ++inter[other];
      }
    }
    auto& row = emb.rows_[q];
    row.reserve(touched.size());
    const size_t q_size = input.set(q).items.size();
    for (SetId other : touched) {
      const size_t o_size = input.set(other).items.size();
      const size_t in = inter[other];
      inter[other] = 0;
      double value = 0.0;
      switch (sim.variant()) {
        case Variant::kJaccardCutoff:
        case Variant::kJaccardThreshold:
        case Variant::kExact:
          value = JaccardFromSizes(q_size, o_size, in);
          break;
        case Variant::kF1Cutoff:
        case Variant::kF1Threshold:
          value = F1FromSizes(q_size, o_size, in);
          break;
        case Variant::kPerfectRecall:
          value = 0.5 * (RecallFromSizes(q_size, in) +
                         PrecisionFromSizes(o_size, in));
          break;
      }
      if (value > 0.0) {
        row.push_back({other, static_cast<float>(value)});
        emb.norms_[q] += value * value;
      }
    }
    std::sort(row.begin(), row.end(),
              [](const Embeddings::Entry& a, const Embeddings::Entry& b) {
                return a.col < b.col;
              });
  }
  return emb;
}

}  // namespace cct
}  // namespace oct
