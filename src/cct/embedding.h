// Global-context embeddings of input sets (Section 4): input set q is
// embedded as the vector of its similarities to every input set,
// E(q)_i = S(q, q_i); the Perfect-Recall variant uses the mean of precision
// and recall. Rows are stored sparsely — disjoint sets contribute zeros —
// and pairwise Euclidean distances are evaluated through dot products.

#ifndef OCT_CCT_EMBEDDING_H_
#define OCT_CCT_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "core/input.h"
#include "core/similarity.h"
#include "kernel/pairwise.h"

namespace oct {
namespace cct {

/// Sparse row-major matrix of the set embeddings.
class Embeddings {
 public:
  /// Shared with the kernel distance-matrix driver so rows hand over
  /// without conversion.
  using Entry = kernel::SparseVecEntry;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<Entry>& row(size_t r) const { return rows_[r]; }

  /// All rows (the layout CondensedEuclideanDistances consumes).
  const std::vector<std::vector<Entry>>& rows() const { return rows_; }

  /// Squared Euclidean norm of a row.
  double SquaredNorm(size_t r) const { return norms_[r]; }
  const std::vector<double>& squared_norms() const { return norms_; }

  /// Euclidean distance between two rows.
  double Distance(size_t a, size_t b) const;

  /// Dense copy of a row (for tests).
  std::vector<float> Dense(size_t r, size_t dims) const;

  friend Embeddings EmbedInputSets(const OctInput& input,
                                   const Similarity& sim,
                                   const kernel::ItemSetIndex* index);

 private:
  std::vector<std::vector<Entry>> rows_;
  std::vector<double> norms_;
};

/// Builds the embedding matrix for the given variant. For Jaccard and F1
/// variants entry i is the raw (un-thresholded) similarity; for
/// Perfect-Recall it is (recall + precision) / 2; for Exact it is the
/// Jaccard similarity (the natural graded proxy, since the 0/1 Exact
/// function embeds every distinct set at distance sqrt(2) from every other).
/// `index` (optional) supplies a prebuilt inverted index over `input`;
/// results are identical with or without it.
Embeddings EmbedInputSets(const OctInput& input, const Similarity& sim,
                          const kernel::ItemSetIndex* index = nullptr);

}  // namespace cct
}  // namespace oct

#endif  // OCT_CCT_EMBEDDING_H_
