#include "cct/agglomerative.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace oct {
namespace cct {

namespace {

/// Condensed upper-triangular index for i < j over n slots.
inline size_t CondensedIndex(size_t n, size_t i, size_t j) {
  OCT_DCHECK_LT(i, j);
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

}  // namespace

Dendrogram AgglomerativeCluster(
    size_t n, const std::function<double(size_t, size_t)>& distance,
    Linkage linkage, const fault::CancelToken* cancel) {
  // Condensed distance matrix (float to halve memory).
  std::vector<float> dist(n <= 1 ? 0 : n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[CondensedIndex(n, i, j)] = static_cast<float>(distance(i, j));
    }
  }
  return AgglomerativeClusterCondensed(n, std::move(dist), linkage, cancel);
}

Dendrogram AgglomerativeClusterCondensed(size_t n, std::vector<float> dist,
                                         Linkage linkage,
                                         const fault::CancelToken* cancel) {
  Dendrogram dendro;
  dendro.num_leaves = n;
  if (n <= 1) return dendro;
  OCT_CHECK_EQ(dist.size(), n * (n - 1) / 2);
  auto d = [&](size_t a, size_t b) -> float& {
    return a < b ? dist[CondensedIndex(n, a, b)]
                 : dist[CondensedIndex(n, b, a)];
  };

  std::vector<char> active(n, 1);
  std::vector<size_t> size(n, 1);
  std::vector<uint32_t> node_id(n);
  for (size_t i = 0; i < n; ++i) node_id[i] = static_cast<uint32_t>(i);

  std::vector<size_t> chain;
  chain.reserve(n);
  size_t remaining = n;
  uint32_t next_id = static_cast<uint32_t>(n);

  while (remaining > 1) {
    if (fault::Cancelled(cancel)) {
      // Fast finish: fold the remaining clusters left-to-right. The merge
      // heights are whatever the (possibly stale) matrix says — heights are
      // advisory; downstream only consumes the merge structure.
      size_t acc = SIZE_MAX;
      for (size_t i = 0; i < n && remaining > 1; ++i) {
        if (!active[i]) continue;
        if (acc == SIZE_MAX) {
          acc = i;
          continue;
        }
        dendro.merges.push_back({node_id[acc], node_id[i], d(acc, i)});
        active[i] = 0;
        node_id[acc] = next_id++;
        --remaining;
      }
      break;
    }
    if (chain.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      const size_t top = chain.back();
      // Nearest active neighbor; prefer the previous chain element on ties
      // (guarantees progress), then the lowest slot.
      size_t nearest = SIZE_MAX;
      float best = std::numeric_limits<float>::infinity();
      const size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : SIZE_MAX;
      for (size_t k = 0; k < n; ++k) {
        if (!active[k] || k == top) continue;
        const float dk = d(top, k);
        if (dk < best || (dk == best && k == prev)) {
          best = dk;
          nearest = k;
        }
      }
      OCT_DCHECK(nearest != SIZE_MAX);
      if (nearest == prev) {
        // Reciprocal nearest neighbors: merge top and prev.
        const size_t a = prev;
        const size_t b = top;
        chain.pop_back();
        chain.pop_back();
        dendro.merges.push_back({node_id[a], node_id[b], best});
        // Lance-Williams update into slot a.
        for (size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          float nd = 0.0f;
          switch (linkage) {
            case Linkage::kAverage:
              nd = (static_cast<float>(size[a]) * d(a, k) +
                    static_cast<float>(size[b]) * d(b, k)) /
                   static_cast<float>(size[a] + size[b]);
              break;
            case Linkage::kSingle:
              nd = std::min(d(a, k), d(b, k));
              break;
            case Linkage::kComplete:
              nd = std::max(d(a, k), d(b, k));
              break;
          }
          d(a, k) = nd;
        }
        active[b] = 0;
        size[a] += size[b];
        node_id[a] = next_id++;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  OCT_DCHECK_EQ(dendro.merges.size(), n - 1);
  return dendro;
}

}  // namespace cct
}  // namespace oct
