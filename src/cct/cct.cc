#include "cct/cct.h"

#include <string>

#include "cct/embedding.h"
#include "core/scoring.h"
#include "kernel/pairwise.h"
#include "core/tree_ops.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oct {
namespace cct {

CategoryTree TreeFromDendrogram(const OctInput& input,
                                const Dendrogram& dendrogram,
                                std::vector<NodeId>* cat_of) {
  const size_t n = dendrogram.num_leaves;
  OCT_CHECK_EQ(n, input.num_sets());
  CategoryTree tree;
  // Dendrogram node id -> tree node. Built top-down from the root merge.
  std::vector<NodeId> of(n + dendrogram.merges.size(), kInvalidNode);
  if (n == 0) {
    if (cat_of) cat_of->clear();
    return tree;
  }
  if (n == 1) {
    of[0] = tree.AddCategory(tree.root(), input.set(0).label, 0);
  } else {
    // The last merge is the top; attach it under the tree root, then expand
    // merges in reverse order (parents are created before children).
    of[dendrogram.RootId()] = tree.root();
    for (size_t k = dendrogram.merges.size(); k-- > 0;) {
      const auto& m = dendrogram.merges[k];
      const NodeId parent = of[n + k];
      OCT_DCHECK(parent != kInvalidNode);
      for (uint32_t child : {m.left, m.right}) {
        if (child < n) {
          const std::string& label = input.set(child).label;
          of[child] = tree.AddCategory(
              parent,
              label.empty() ? "C(q" + std::to_string(child) + ")" : label,
              static_cast<SetId>(child));
        } else {
          of[child] = tree.AddCategory(parent, "");
        }
      }
    }
  }
  if (cat_of) {
    cat_of->assign(n, kInvalidNode);
    for (SetId q = 0; q < n; ++q) (*cat_of)[q] = of[q];
  }
  return tree;
}

CctResult BuildCategoryTree(const OctInput& input, const Similarity& sim,
                            const CctOptions& options) {
  OCT_CHECK(input.Validate().ok()) << input.Validate().ToString();
  OCT_SPAN("cct/build_category_tree");
  static obs::Counter* runs =
      obs::MetricsRegistry::Default()->GetCounter("cct.runs");
  static obs::Histogram* embed_us =
      obs::MetricsRegistry::Default()->GetHistogram("cct.embed_us");
  static obs::Histogram* cluster_us =
      obs::MetricsRegistry::Default()->GetHistogram("cct.cluster_us");
  static obs::Histogram* assign_us =
      obs::MetricsRegistry::Default()->GetHistogram("cct.assign_us");
  runs->Increment();
  static obs::Counter* deadline_hits =
      obs::MetricsRegistry::Default()->GetCounter("cct.deadline_exceeded");
  CctResult result;
  result.status = OCT_FAILPOINT("cct.build");
  const size_t n = input.num_sets();

  // Line 1: embeddings.
  Timer timer;
  Embeddings emb;
  {
    OCT_SPAN("cct/embed");
    emb = EmbedInputSets(input, sim, options.index);
  }
  result.seconds_embed = timer.ElapsedSeconds();
  embed_us->Record(result.seconds_embed * 1e6);

  // Lines 2-3: dendrogram -> tree template.
  timer.Reset();
  std::vector<NodeId> cat_of;
  {
    OCT_SPAN("cct/cluster");
    // Matrix filled by the parallel kernel (bit-identical to the serial
    // emb.Distance oracle — see kernel/pairwise.h); clustering unchanged.
    std::vector<float> dist = kernel::CondensedEuclideanDistances(
        emb.rows(), emb.squared_norms(), options.pool);
    const Dendrogram dendro = AgglomerativeClusterCondensed(
        n, std::move(dist), options.linkage, options.cancel);
    result.tree = TreeFromDendrogram(input, dendro, &cat_of);
  }
  result.seconds_cluster = timer.ElapsedSeconds();
  cluster_us->Record(result.seconds_cluster * 1e6);

  // Line 4: Algorithm 2 over all input sets (items land in leaf categories).
  timer.Reset();
  OCT_SPAN("cct/assign_items");
  AssignItemsOptions assign;
  assign.target_sets.resize(n);
  for (SetId q = 0; q < n; ++q) assign.target_sets[q] = q;
  assign.cat_of = cat_of;
  result.assignment = AssignItems(input, sim, assign, &result.tree);

  // Lines 5-6: condense — a refinement pass, shed first when the build
  // budget runs out. Line 7: misc category — always runs (model validity).
  const NodeId exclude_cover =
      options.root_cover_candidate ? kInvalidNode : result.tree.root();
  if (options.condense && !fault::Cancelled(options.cancel)) {
    CondenseTree(input, sim, &result.tree, /*protect=*/{}, exclude_cover);
  }
  if (options.add_misc_category) AddMiscCategory(input, &result.tree);
  AnnotateCoveredSets(input, sim, &result.tree, exclude_cover);
  result.seconds_assign = timer.ElapsedSeconds();
  assign_us->Record(result.seconds_assign * 1e6);
  if (result.status.ok() && fault::Cancelled(options.cancel)) {
    result.status = options.cancel->status();
  }
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_hits->Increment();
  }
  OCT_DCHECK(result.tree.ValidateModel(input).ok())
      << result.tree.ValidateModel(input).ToString();
  return result;
}

}  // namespace cct
}  // namespace oct
