// Train/test robustness evaluation (Section 5.2/5.3): randomly partition
// the query set into two halves, construct the tree over the training half,
// and score it against the held-out half; repeat over many random splits
// and average.

#ifndef OCT_EVAL_TRAIN_TEST_H_
#define OCT_EVAL_TRAIN_TEST_H_

#include <cstdint>

#include "eval/harness.h"

namespace oct {
namespace eval {

struct TrainTestResult {
  double mean_train_score = 0.0;
  double mean_test_score = 0.0;
  size_t splits = 0;
};

/// Runs `splits` random 50/50 partitions (paper: 50) and averages the
/// normalized scores of the tree built on train, evaluated on both halves.
TrainTestResult TrainTestEvaluate(Algorithm algo,
                                  const data::Dataset& dataset,
                                  const Similarity& sim, size_t splits,
                                  uint64_t seed);

}  // namespace eval
}  // namespace oct

#endif  // OCT_EVAL_TRAIN_TEST_H_
