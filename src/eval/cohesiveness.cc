#include "eval/cohesiveness.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace oct {
namespace eval {

namespace {

using TfIdfVector = std::vector<std::pair<uint32_t, float>>;  // sorted by id

double Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t i = 0, j = 0;
  for (const auto& [id, v] : a) {
    (void)id;
    na += static_cast<double>(v) * v;
  }
  for (const auto& [id, v] : b) {
    (void)id;
    nb += static_cast<double>(v) * v;
  }
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      dot += static_cast<double>(a[i].second) * b[j].second;
      ++i;
      ++j;
    }
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

CohesivenessResult MeasureCohesiveness(const data::Catalog& catalog,
                                       const CategoryTree& tree,
                                       const CohesivenessOptions& options) {
  // Token vocabulary and document frequencies over the whole catalog.
  std::unordered_map<std::string, uint32_t> vocab;
  std::vector<uint32_t> doc_freq;
  std::vector<std::vector<uint32_t>> tokens_of_item(catalog.num_items());
  for (ItemId item = 0; item < catalog.num_items(); ++item) {
    std::vector<uint32_t> ids;
    for (const std::string& tok : Tokenize(catalog.Title(item))) {
      auto [it, inserted] =
          vocab.try_emplace(tok, static_cast<uint32_t>(vocab.size()));
      if (inserted) doc_freq.push_back(0);
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (uint32_t id : ids) ++doc_freq[id];
    tokens_of_item[item] = std::move(ids);
  }
  const double n_docs = static_cast<double>(catalog.num_items());
  std::vector<float> idf(doc_freq.size());
  for (size_t t = 0; t < doc_freq.size(); ++t) {
    idf[t] = static_cast<float>(
        std::log(n_docs / (1.0 + static_cast<double>(doc_freq[t]))));
  }
  auto vector_of = [&](ItemId item) {
    TfIdfVector v;
    v.reserve(tokens_of_item[item].size());
    // Titles have unique tokens, so tf is 1; weight = idf.
    for (uint32_t id : tokens_of_item[item]) v.push_back({id, idf[id]});
    return v;
  };

  CohesivenessResult result;
  Rng rng(options.seed);
  const auto item_sets = tree.ComputeItemSets();
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.IsAlive(id) || id == tree.root() || !tree.IsLeaf(id)) continue;
    if (options.skip_misc && tree.node(id).label == "misc") continue;
    const ItemSet& items = item_sets[id];
    if (items.size() < options.min_items) continue;
    // Sample up to max_items_per_category items.
    std::vector<ItemId> sample(items.begin(), items.end());
    if (sample.size() > options.max_items_per_category) {
      rng.Shuffle(&sample);
      sample.resize(options.max_items_per_category);
    }
    std::vector<TfIdfVector> vectors;
    vectors.reserve(sample.size());
    for (ItemId item : sample) vectors.push_back(vector_of(item));
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < vectors.size(); ++i) {
      for (size_t j = i + 1; j < vectors.size(); ++j) {
        total += Cosine(vectors[i], vectors[j]);
        ++pairs;
      }
    }
    if (pairs == 0) continue;
    const double avg = total / static_cast<double>(pairs);
    result.uniform_average += avg;
    weighted_sum += avg * static_cast<double>(items.size());
    weight_total += static_cast<double>(items.size());
    ++result.categories_evaluated;
  }
  if (result.categories_evaluated > 0) {
    result.uniform_average /=
        static_cast<double>(result.categories_evaluated);
  }
  if (weight_total > 0.0) {
    result.weighted_average = weighted_sum / weight_total;
  }
  return result;
}

}  // namespace eval
}  // namespace oct
