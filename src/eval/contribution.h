// Conservative-update experiment (Table 1): mix query result sets with the
// existing tree's categories as input, modulating the weight ratio between
// the two sources, and measure how the final CTCR score splits between
// covering queries and covering existing categories. The paper finds the
// ratio in ≈ the ratio out, i.e. weights suffice to control how much the
// tree may change.

#ifndef OCT_EVAL_CONTRIBUTION_H_
#define OCT_EVAL_CONTRIBUTION_H_

#include <vector>

#include "core/similarity.h"
#include "data/datasets.h"

namespace oct {
namespace eval {

struct ContributionRow {
  /// Fraction of the total input weight given to query sets (e.g. 0.9).
  double query_weight_fraction = 0.0;
  /// Fraction of the achieved score contributed by covering query sets.
  double score_from_queries = 0.0;
  /// Fraction contributed by covering existing categories.
  double score_from_existing = 0.0;
};

/// Runs CTCR on the mixed input for each requested query-weight fraction
/// (paper: 0.9, 0.7, 0.5, 0.3, 0.1 with threshold Jaccard δ = 0.8 on D).
std::vector<ContributionRow> ContributionSplit(
    const data::Dataset& dataset, const Similarity& sim,
    const std::vector<double>& query_fractions);

}  // namespace eval
}  // namespace oct

#endif  // OCT_EVAL_CONTRIBUTION_H_
