// Taxonomist tooling of Section 5.4 ("Identifying and correcting errors"):
//  - detect categorization errors that survived preprocessing (the "Nike
//    Blazer" effect) by flagging categories whose items have high pairwise
//    semantic-embedding distances, together with the outlier items;
//  - list input sets no category covers (underrepresented candidate
//    categories, e.g. seasonal World-Cup merchandise);
//  - list rare items absent from every covering category.

#ifndef OCT_EVAL_ERROR_DETECTION_H_
#define OCT_EVAL_ERROR_DETECTION_H_

#include <vector>

#include "core/category_tree.h"
#include "core/scoring.h"
#include "data/catalog.h"

namespace oct {
namespace eval {

struct IncoherenceOptions {
  /// Flag categories whose mean item-to-centroid distance exceeds this.
  double mean_distance_threshold = 1.0;
  /// Items further than this many times the category's mean distance are
  /// reported as outliers.
  double outlier_factor = 2.0;
  /// Items sampled per category.
  size_t max_items = 64;
  /// Categories smaller than this are skipped.
  size_t min_items = 4;
  uint64_t seed = 11;
};

struct SuspiciousCategory {
  NodeId node = kInvalidNode;
  double mean_distance = 0.0;
  /// Items far from the category centroid (likely misclassified).
  std::vector<ItemId> outliers;
};

/// Scans the leaf categories of `tree` for semantic incoherence, mirroring
/// the taxonomists' tool that "detects high pairwise distances between
/// embeddings of items within a category". Returns flagged categories,
/// most incoherent first.
std::vector<SuspiciousCategory> DetectIncoherentCategories(
    const data::Catalog& catalog, const CategoryTree& tree,
    const IncoherenceOptions& options = {});

/// Input sets not covered by the tree (candidates for threshold reduction /
/// weight boosting and reemployment).
std::vector<SetId> UncoveredSets(const TreeScore& score);

/// Items that appear in at least one input set but in no category that
/// covers some set — initially absent from any covering category; the
/// paper routes them to existing categories automatically.
ItemSet UncoveredItems(const OctInput& input, const CategoryTree& tree,
                       const TreeScore& score);

}  // namespace eval
}  // namespace oct

#endif  // OCT_EVAL_ERROR_DETECTION_H_
