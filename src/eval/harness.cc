#include "eval/harness.h"

#include <utility>

#include "baselines/ic_q.h"
#include "baselines/ic_s.h"
#include "cct/cct.h"
#include "ctcr/ctcr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oct {
namespace eval {

const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kCtcr:
      return "CTCR";
    case Algorithm::kCct:
      return "CCT";
    case Algorithm::kIcQ:
      return "IC-Q";
    case Algorithm::kIcS:
      return "IC-S";
    case Algorithm::kEt:
      return "ET";
  }
  return "?";
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kCtcr, Algorithm::kCct, Algorithm::kIcQ,
          Algorithm::kIcS, Algorithm::kEt};
}

CategoryTree BuildTree(Algorithm algo, const data::Dataset& dataset,
                       const OctInput& input, const Similarity& sim) {
  return BuildTree(algo, dataset, input, sim, /*cancel=*/nullptr,
                   /*build_status=*/nullptr);
}

CategoryTree BuildTree(Algorithm algo, const data::Dataset& dataset,
                       const OctInput& input, const Similarity& sim,
                       const fault::CancelToken* cancel,
                       Status* build_status) {
  if (build_status) *build_status = Status::OK();
  switch (algo) {
    case Algorithm::kCtcr: {
      ctcr::CtcrOptions options;
      options.cancel = cancel;
      ctcr::CtcrResult result = ctcr::BuildCategoryTree(input, sim, options);
      if (build_status) *build_status = result.status;
      return std::move(result.tree);
    }
    case Algorithm::kCct: {
      cct::CctOptions options;
      options.cancel = cancel;
      cct::CctResult result = cct::BuildCategoryTree(input, sim, options);
      if (build_status) *build_status = result.status;
      return std::move(result.tree);
    }
    case Algorithm::kIcQ:
      return baselines::BuildIcQTree(input);
    case Algorithm::kIcS:
      return baselines::BuildIcSTree(*dataset.catalog, input);
    case Algorithm::kEt: {
      CategoryTree copy = dataset.existing_tree;
      return copy;
    }
  }
  OCT_CHECK(false);
  return CategoryTree();
}

AlgoRun RunAlgorithm(Algorithm algo, const data::Dataset& dataset,
                     const OctInput& input, const Similarity& sim) {
  OCT_SPAN("eval/run_algorithm");
  static obs::Histogram* build_us =
      obs::MetricsRegistry::Default()->GetHistogram("eval.build_us");
  AlgoRun run;
  run.algo = algo;
  Timer timer;
  CategoryTree tree;
  {
    OCT_SPAN("eval/build_tree");
    tree = BuildTree(algo, dataset, input, sim);
  }
  run.seconds = timer.ElapsedSeconds();
  build_us->Record(run.seconds * 1e6);
  {
    OCT_SPAN("eval/score_tree");
    run.score = ScoreTree(input, tree, sim);
  }
  run.num_categories = tree.NumCategories();
  return run;
}

AlgoRun RunAlgorithm(Algorithm algo, const data::Dataset& dataset,
                     const Similarity& sim) {
  return RunAlgorithm(algo, dataset, dataset.input, sim);
}

}  // namespace eval
}  // namespace oct
