#include "eval/error_detection.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.h"

namespace oct {
namespace eval {

namespace {

double EuclideanDistance(const std::vector<float>& a,
                         const std::vector<float>& b) {
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace

std::vector<SuspiciousCategory> DetectIncoherentCategories(
    const data::Catalog& catalog, const CategoryTree& tree,
    const IncoherenceOptions& options) {
  std::vector<SuspiciousCategory> flagged;
  Rng rng(options.seed);
  const auto item_sets = tree.ComputeItemSets();
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.IsAlive(id) || id == tree.root() || !tree.IsLeaf(id)) continue;
    if (tree.node(id).label == "misc") continue;
    const ItemSet& items = item_sets[id];
    if (items.size() < options.min_items) continue;
    std::vector<ItemId> sample(items.begin(), items.end());
    if (sample.size() > options.max_items) {
      rng.Shuffle(&sample);
      sample.resize(options.max_items);
    }
    // Centroid of the sampled embeddings.
    std::vector<std::vector<float>> embeddings;
    embeddings.reserve(sample.size());
    for (ItemId item : sample) {
      embeddings.push_back(catalog.SemanticEmbedding(item));
    }
    std::vector<float> centroid(embeddings[0].size(), 0.0f);
    for (const auto& e : embeddings) {
      for (size_t d = 0; d < e.size(); ++d) centroid[d] += e[d];
    }
    for (auto& c : centroid) c /= static_cast<float>(embeddings.size());
    // Mean distance and outliers.
    std::vector<double> distances(sample.size());
    double mean = 0.0;
    for (size_t i = 0; i < sample.size(); ++i) {
      distances[i] = EuclideanDistance(embeddings[i], centroid);
      mean += distances[i];
    }
    mean /= static_cast<double>(sample.size());
    if (mean <= options.mean_distance_threshold) continue;
    SuspiciousCategory sc;
    sc.node = id;
    sc.mean_distance = mean;
    for (size_t i = 0; i < sample.size(); ++i) {
      if (distances[i] > options.outlier_factor * mean) {
        sc.outliers.push_back(sample[i]);
      }
    }
    flagged.push_back(std::move(sc));
  }
  std::sort(flagged.begin(), flagged.end(),
            [](const SuspiciousCategory& a, const SuspiciousCategory& b) {
              return a.mean_distance > b.mean_distance;
            });
  return flagged;
}

std::vector<SetId> UncoveredSets(const TreeScore& score) {
  std::vector<SetId> out;
  for (SetId q = 0; q < score.per_set.size(); ++q) {
    if (!score.per_set[q].covered) out.push_back(q);
  }
  return out;
}

ItemSet UncoveredItems(const OctInput& input, const CategoryTree& tree,
                       const TreeScore& score) {
  // Union of the item sets of all covering categories.
  std::unordered_set<NodeId> covering;
  for (const SetCover& cover : score.per_set) {
    if (cover.covered && cover.best_node != kInvalidNode) {
      covering.insert(cover.best_node);
    }
  }
  ItemSet in_covering;
  for (NodeId node : covering) {
    in_covering.UnionInPlace(tree.ItemSetOf(node));
  }
  // Items in some input set but in no covering category.
  ItemSet in_sets = input.AllItems();
  return in_sets.Difference(in_covering);
}

}  // namespace eval
}  // namespace oct
