#include "eval/contribution.h"

#include "baselines/existing_tree.h"
#include "core/scoring.h"
#include "ctcr/ctcr.h"
#include "util/logging.h"

namespace oct {
namespace eval {

std::vector<ContributionRow> ContributionSplit(
    const data::Dataset& dataset, const Similarity& sim,
    const std::vector<double>& query_fractions) {
  const OctInput& queries = dataset.input;
  const std::vector<CandidateSet> existing =
      baselines::CategoriesAsCandidateSets(dataset.existing_tree, 1.0);
  OCT_CHECK(!existing.empty());
  const double query_weight_total = queries.TotalWeight();
  OCT_CHECK_GT(query_weight_total, 0.0);

  std::vector<ContributionRow> rows;
  for (double fraction : query_fractions) {
    // Scale both sources to a common total weight of 1: queries get
    // `fraction`, existing categories split (1 - fraction) uniformly.
    OctInput mixed(queries.universe_size());
    const size_t num_queries = queries.num_sets();
    for (SetId q = 0; q < num_queries; ++q) {
      CandidateSet cs = queries.set(q);
      cs.weight = cs.weight / query_weight_total * fraction;
      mixed.Add(std::move(cs));
    }
    const double existing_each =
        (1.0 - fraction) / static_cast<double>(existing.size());
    for (const CandidateSet& e : existing) {
      CandidateSet cs = e;
      cs.weight = existing_each;
      mixed.Add(std::move(cs));
    }

    const ctcr::CtcrResult result = ctcr::BuildCategoryTree(mixed, sim);
    const TreeScore score = ScoreTree(mixed, result.tree, sim);
    double from_queries = 0.0;
    double from_existing = 0.0;
    for (SetId q = 0; q < mixed.num_sets(); ++q) {
      const double contribution =
          mixed.set(q).weight * score.per_set[q].score;
      if (q < num_queries) {
        from_queries += contribution;
      } else {
        from_existing += contribution;
      }
    }
    ContributionRow row;
    row.query_weight_fraction = fraction;
    const double total = from_queries + from_existing;
    if (total > 0.0) {
      row.score_from_queries = from_queries / total;
      row.score_from_existing = from_existing / total;
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace eval
}  // namespace oct
