// Experiment harness: runs any of the five algorithms of Section 5.2
// (CTCR, CCT, IC-Q, IC-S, ET) over a dataset and reports normalized scores
// — the machinery behind every figure bench.

#ifndef OCT_EVAL_HARNESS_H_
#define OCT_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "core/scoring.h"
#include "core/similarity.h"
#include "data/datasets.h"
#include "fault/cancel.h"
#include "util/status.h"

namespace oct {
namespace eval {

enum class Algorithm { kCtcr, kCct, kIcQ, kIcS, kEt };

const char* AlgorithmName(Algorithm algo);

/// All five algorithms, best-first (the paper's reported ranking).
std::vector<Algorithm> AllAlgorithms();

struct AlgoRun {
  Algorithm algo;
  TreeScore score;
  double seconds = 0.0;
  size_t num_categories = 0;
};

/// Builds the algorithm's tree for `input` and scores it under `sim`.
/// The catalog/existing tree are taken from `dataset`; `input` defaults to
/// dataset.input but may be overridden (train/test, Table 1).
AlgoRun RunAlgorithm(Algorithm algo, const data::Dataset& dataset,
                     const OctInput& input, const Similarity& sim);

/// Convenience: run on the dataset's own input.
AlgoRun RunAlgorithm(Algorithm algo, const data::Dataset& dataset,
                     const Similarity& sim);

/// Builds (without scoring) the algorithm's tree.
CategoryTree BuildTree(Algorithm algo, const data::Dataset& dataset,
                       const OctInput& input, const Similarity& sim);

/// Deadline-aware variant: `cancel` (may be null) is threaded through the
/// anytime algorithms (CTCR's MIS stage, CCT's clustering), which shed
/// their refinement passes on expiry but always return a valid tree.
/// `build_status` (may be null) receives OK, kDeadlineExceeded, or an
/// injected failpoint error (`ctcr.build` / `cct.build`).
CategoryTree BuildTree(Algorithm algo, const data::Dataset& dataset,
                       const OctInput& input, const Similarity& sim,
                       const fault::CancelToken* cancel,
                       Status* build_status);

}  // namespace eval
}  // namespace oct

#endif  // OCT_EVAL_HARNESS_H_
