#include "eval/train_test.h"

#include <numeric>

#include "util/rng.h"

namespace oct {
namespace eval {

TrainTestResult TrainTestEvaluate(Algorithm algo,
                                  const data::Dataset& dataset,
                                  const Similarity& sim, size_t splits,
                                  uint64_t seed) {
  TrainTestResult result;
  result.splits = splits;
  const OctInput& full = dataset.input;
  Rng rng(seed);
  for (size_t split = 0; split < splits; ++split) {
    std::vector<SetId> ids(full.num_sets());
    std::iota(ids.begin(), ids.end(), 0);
    rng.Shuffle(&ids);
    const size_t half = ids.size() / 2;
    OctInput train(full.universe_size());
    OctInput test(full.universe_size());
    for (size_t i = 0; i < ids.size(); ++i) {
      const CandidateSet& cs = full.set(ids[i]);
      (i < half ? train : test).Add(cs);
    }
    const CategoryTree tree = BuildTree(algo, dataset, train, sim);
    result.mean_train_score += ScoreTree(train, tree, sim).normalized;
    result.mean_test_score += ScoreTree(test, tree, sim).normalized;
  }
  if (splits > 0) {
    result.mean_train_score /= static_cast<double>(splits);
    result.mean_test_score /= static_cast<double>(splits);
  }
  return result;
}

}  // namespace eval
}  // namespace oct
