// Category cohesiveness metric (Section 5.4): average pairwise tf-idf
// cosine similarity of product titles within each leaf category — the paper
// reports 0.52 (CTCR) vs 0.49 (ET) uniformly averaged, and 0.45 for both
// when weighting by category size.

#ifndef OCT_EVAL_COHESIVENESS_H_
#define OCT_EVAL_COHESIVENESS_H_

#include <cstdint>

#include "core/category_tree.h"
#include "data/catalog.h"

namespace oct {
namespace eval {

struct CohesivenessOptions {
  /// Items sampled per category for the pairwise average.
  size_t max_items_per_category = 24;
  /// Categories need at least this many items to be evaluated.
  size_t min_items = 2;
  /// Skip the catch-all category of unassigned items — it is not a curated
  /// category and would dominate the size-weighted average.
  bool skip_misc = true;
  uint64_t seed = 9;
};

struct CohesivenessResult {
  /// Uniform average over categories.
  double uniform_average = 0.0;
  /// Average weighted by category size.
  double weighted_average = 0.0;
  size_t categories_evaluated = 0;
};

/// Measures tf-idf cohesiveness of the leaf categories of `tree` using the
/// catalog's titles. idf is computed over the full catalog.
CohesivenessResult MeasureCohesiveness(const data::Catalog& catalog,
                                       const CategoryTree& tree,
                                       const CohesivenessOptions& options = {});

}  // namespace eval
}  // namespace oct

#endif  // OCT_EVAL_COHESIVENESS_H_
