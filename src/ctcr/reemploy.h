// The human-in-the-loop reemployment workflow of Sections 3 and 5.4:
// "reemploying the algorithm with reduced thresholds for uncovered queries"
// and raising the weights of underrepresented candidate categories. The
// taxonomists reported that "reemploying CTCR several times is sufficient
// to derive a tree with the desired categorization improvements".

#ifndef OCT_CTCR_REEMPLOY_H_
#define OCT_CTCR_REEMPLOY_H_

#include <vector>

#include "ctcr/ctcr.h"

namespace oct {
namespace ctcr {

struct ReemployOptions {
  /// Per-round multiplier applied to the thresholds of uncovered sets.
  double threshold_factor = 0.85;
  /// Lowest threshold a set may be reduced to.
  double min_delta = 0.3;
  /// Per-round multiplier applied to the weights of uncovered sets
  /// (1 = weights untouched; taxonomists raise weights of categories they
  /// insist on).
  double weight_boost = 1.0;
  /// Maximum reemployment rounds (the first run counts as round 1).
  size_t max_rounds = 4;
  CtcrOptions ctcr;
};

struct ReemployResult {
  /// The final CTCR run.
  CtcrResult final_run;
  /// Input after the per-set threshold/weight adjustments.
  OctInput adjusted_input;
  /// Covered-set count after each round.
  std::vector<size_t> covered_per_round;
  /// Normalized score (w.r.t. the ORIGINAL weights) after each round.
  std::vector<double> score_per_round;
  size_t rounds = 0;
};

/// Runs CTCR, then repeatedly lowers the thresholds (and optionally boosts
/// the weights) of still-uncovered sets and reruns, until every set is
/// covered or the round budget is exhausted. Scores reported against the
/// original weights so rounds are comparable.
ReemployResult ReemployWithReducedThresholds(const OctInput& input,
                                             const Similarity& sim,
                                             const ReemployOptions& options =
                                                 {});

}  // namespace ctcr
}  // namespace oct

#endif  // OCT_CTCR_REEMPLOY_H_
