#include "ctcr/conflicts.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "kernel/item_set_index.h"
#include "kernel/pairwise.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace ctcr {

namespace {

PairStats MakeStats(const OctInput& input, const ConflictAnalysis& analysis,
                    SetId a, SetId b, uint32_t inter, uint32_t inter_strict) {
  // `hi` is the lower rank number (placed higher).
  const SetId hi = analysis.rank[a] < analysis.rank[b] ? a : b;
  const SetId lo = hi == a ? b : a;
  PairStats p;
  p.hi_size = input.set(hi).items.size();
  p.lo_size = input.set(lo).items.size();
  p.inter = inter;
  p.inter_strict = inter_strict;
  p.hi_delta = input.set(hi).delta_override;
  p.lo_delta = input.set(lo).delta_override;
  return p;
}

}  // namespace

ConflictAnalysis AnalyzeConflicts(const OctInput& input, const Similarity& sim,
                                  bool find_3conflicts, ThreadPool* pool,
                                  const kernel::ItemSetIndex* index) {
  OCT_SPAN("ctcr/analyze_conflicts");
  const size_t n = input.num_sets();
  ConflictAnalysis analysis;

  // Ranking: size desc, weight asc, id asc (Section 3.2).
  analysis.by_rank.resize(n);
  std::iota(analysis.by_rank.begin(), analysis.by_rank.end(), 0);
  std::sort(analysis.by_rank.begin(), analysis.by_rank.end(),
            [&](SetId a, SetId b) {
              const size_t sa = input.set(a).items.size();
              const size_t sb = input.set(b).items.size();
              if (sa != sb) return sa > sb;
              if (input.set(a).weight != input.set(b).weight) {
                return input.set(a).weight < input.set(b).weight;
              }
              return a < b;
            });
  analysis.rank.resize(n);
  for (uint32_t r = 0; r < n; ++r) analysis.rank[analysis.by_rank[r]] = r;

  const ConflictPolicy policy(sim);
  kernel::ItemSetIndex local_index;
  if (index == nullptr) {
    local_index = kernel::ItemSetIndex::Build(input);
    index = &local_index;
  }

  // Parallel 2-conflict scan over intersecting pairs (disjoint pairs are
  // pruned by the kernel driver and never examined).
  std::mutex merge_mu;
  std::vector<std::pair<SetId, SetId>> conflicts2;
  std::vector<std::pair<SetId, SetId>> must_pairs;
  size_t pairs_examined = 0;
  {
  OCT_SPAN("ctcr/scan_pairs");
  kernel::ScanOverlapChunks(
      *index, pool,
      [&](size_t begin, size_t end, kernel::OverlapScratch& scratch) {
        std::vector<std::pair<SetId, SetId>> local_conflicts;
        std::vector<std::pair<SetId, SetId>> local_must;
        size_t local_pairs = 0;
        for (size_t q = begin; q < end; ++q) {
          const std::vector<kernel::PairCount>& partners =
              scratch.Partners(static_cast<SetId>(q), /*later_only=*/true);
          local_pairs += partners.size();
          for (const kernel::PairCount& pi : partners) {
            const PairStats stats =
                MakeStats(input, analysis, static_cast<SetId>(q), pi.other,
                          pi.inter, pi.inter_strict);
            const bool together = policy.CanCoverTogether(stats);
            const bool separately = policy.CanCoverSeparately(stats);
            if (!together && !separately) {
              local_conflicts.push_back({static_cast<SetId>(q), pi.other});
            } else if (together && !separately) {
              local_must.push_back({static_cast<SetId>(q), pi.other});
            }
          }
        }
        std::unique_lock<std::mutex> lock(merge_mu);
        conflicts2.insert(conflicts2.end(), local_conflicts.begin(),
                          local_conflicts.end());
        must_pairs.insert(must_pairs.end(), local_must.begin(),
                          local_must.end());
        pairs_examined += local_pairs;
      });
  }
  analysis.pairs_examined = pairs_examined;
  static obs::Counter* pairs_counter =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.pairs_examined");
  pairs_counter->Increment(pairs_examined);
  std::sort(conflicts2.begin(), conflicts2.end());
  analysis.conflicts2 = std::move(conflicts2);
  for (const auto& [a, b] : analysis.conflicts2) {
    analysis.conflict2_keys.insert(ConflictAnalysis::PairKey(a, b));
  }
  analysis.must_together.assign(n, {});
  std::sort(must_pairs.begin(), must_pairs.end());
  for (const auto& [a, b] : must_pairs) {
    analysis.must_together[a].push_back(b);
    analysis.must_together[b].push_back(a);
    analysis.must_keys.insert(ConflictAnalysis::PairKey(a, b));
  }

  if (!find_3conflicts) return analysis;

  OCT_SPAN("ctcr/conflicts3");
  // 3-conflicts (Section 3.2): for every middle set q2 with must-together
  // partners q1, q3 where q2 is not the lowest-ranking of the three, the
  // triple conflicts unless {q1, q3} must also be covered together (or is
  // already a 2-conflict).
  for (SetId q2 = 0; q2 < n; ++q2) {
    const auto& partners = analysis.must_together[q2];
    for (size_t i = 0; i < partners.size(); ++i) {
      for (size_t j = i + 1; j < partners.size(); ++j) {
        const SetId q1 = partners[i];
        const SetId q3 = partners[j];
        // Skip when q2 is the lowest-ranking (would be the common ancestor).
        if (analysis.rank[q2] < analysis.rank[q1] &&
            analysis.rank[q2] < analysis.rank[q3]) {
          continue;
        }
        if (analysis.IsMustTogether(q1, q3)) continue;
        if (analysis.IsConflict2(q1, q3)) continue;
        std::array<SetId, 3> t = {q1, q2, q3};
        std::sort(t.begin(), t.end());
        analysis.conflicts3.push_back(t);
      }
    }
  }
  std::sort(analysis.conflicts3.begin(), analysis.conflicts3.end());
  analysis.conflicts3.erase(
      std::unique(analysis.conflicts3.begin(), analysis.conflicts3.end()),
      analysis.conflicts3.end());
  return analysis;
}

double WeightedAverageConflicts(const OctInput& input,
                                const ConflictAnalysis& analysis) {
  std::vector<size_t> conflict_count(input.num_sets(), 0);
  for (const auto& [a, b] : analysis.conflicts2) {
    ++conflict_count[a];
    ++conflict_count[b];
  }
  double weighted = 0.0;
  for (SetId q = 0; q < input.num_sets(); ++q) {
    weighted += input.set(q).weight * static_cast<double>(conflict_count[q]);
  }
  const double total = input.TotalWeight();
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace ctcr
}  // namespace oct
