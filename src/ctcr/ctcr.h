// CTCR — the Category Tree Conflict Resolver (Algorithm 1, Section 3).
//
// Pipeline: rank the input sets; enumerate 2-conflicts (and, for thresholds
// below 1, 3-conflicts); solve Maximum Independent Set on the conflict
// (hyper)graph; build a tree with one category per surviving set (parent =
// closest must-cover-together predecessor); assign items (Algorithm 2 for
// the Jaccard / F1 variants); add intermediate categories; condense; collect
// unassigned items into a misc category.

#ifndef OCT_CTCR_CTCR_H_
#define OCT_CTCR_CTCR_H_

#include <vector>

#include "core/category_tree.h"
#include "core/input.h"
#include "core/item_assignment.h"
#include "core/similarity.h"
#include "ctcr/conflicts.h"
#include "fault/cancel.h"
#include "mis/hypergraph_solver.h"
#include "mis/solver.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace oct {
namespace ctcr {

struct CtcrOptions {
  mis::MisOptions mis;
  mis::HypergraphSolverOptions hypergraph;
  /// Thread pool for the parallel phases (null: process default).
  ThreadPool* pool = nullptr;
  /// Prebuilt kernel::ItemSetIndex over the input (not owned; may be null,
  /// in which case CTCR builds one for the run). Callers that run several
  /// pipelines on one dataset build it once and share it.
  const kernel::ItemSetIndex* index = nullptr;
  /// Disable to skip lines 21-23 (intermediate categories) — ablation knob.
  bool add_intermediate_categories = true;
  /// Disable to skip lines 24-25 (condensing) — ablation knob.
  bool condense = true;
  /// Disable to bar the root from best-cover candidacy during condensing
  /// and coverage annotation. Per-component builders (oct::delta) disable
  /// it: the component-local root's item set is the undiluted component
  /// union, so it would steal best-cover designations that the diluted
  /// global root never wins, condensing away real top-level categories.
  bool root_cover_candidate = true;
  /// Disable to skip line 26 (the misc category). The misc category is
  /// universe-wide — it collects every item assigned nowhere — so callers
  /// that build per-component subtrees (oct::delta) must add it exactly
  /// once on the spliced tree, not once per component. ValidateModel only
  /// bounds placements from above, so the tree stays model-valid without it.
  bool add_misc_category = true;
  /// Deadline/cancellation (not owned; may be null). CTCR degrades as an
  /// anytime algorithm: conflict analysis always completes (the tree is
  /// invalid without it), the MIS stage keeps its best valid IS so far, and
  /// the optional refinement passes (intermediate categories, condensing)
  /// are skipped. The result is always a valid, model-checked tree;
  /// `CtcrResult::status` reports kDeadlineExceeded when degraded.
  const fault::CancelToken* cancel = nullptr;
};

/// Everything CTCR produces besides the tree (diagnostics for benchmarks,
/// experiments, and the user-facing workflow).
struct CtcrResult {
  CategoryTree tree;
  /// The conflict-free subset S the tree was built to cover.
  std::vector<SetId> independent_set;
  /// Weight of S — an upper bound on the achievable covered weight for
  /// binary variants (tight for Exact).
  double independent_set_weight = 0.0;
  /// Whether the MIS stage solved its instance optimally.
  bool mis_optimal = false;
  ConflictAnalysis analysis;
  AssignItemsStats assignment;
  size_t intermediates_added = 0;
  double seconds_conflicts = 0.0;
  double seconds_mis = 0.0;
  double seconds_build = 0.0;
  /// OK, or kDeadlineExceeded when the build deadline expired and the tree
  /// is a (still valid) best-so-far result.
  Status status = Status::OK();
};

/// Runs CTCR for any of the six variants. The input must be valid
/// (input.Validate().ok()).
CtcrResult BuildCategoryTree(const OctInput& input, const Similarity& sim,
                             const CtcrOptions& options = {});

}  // namespace ctcr
}  // namespace oct

#endif  // OCT_CTCR_CTCR_H_
