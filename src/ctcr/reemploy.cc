#include "ctcr/reemploy.h"

#include <algorithm>

#include "core/scoring.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace ctcr {

ReemployResult ReemployWithReducedThresholds(const OctInput& input,
                                             const Similarity& sim,
                                             const ReemployOptions& options) {
  OCT_CHECK_GT(options.max_rounds, 0u);
  OCT_SPAN("ctcr/reemploy");
  static obs::Counter* rounds_counter =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.reemploy_rounds");
  ReemployResult result;
  result.adjusted_input = input;
  OctInput original = input;  // Original weights for comparable scoring.

  for (size_t round = 0; round < options.max_rounds; ++round) {
    result.final_run =
        BuildCategoryTree(result.adjusted_input, sim, options.ctcr);
    // Coverage under the adjusted thresholds; score under original weights.
    const TreeScore adjusted_score =
        ScoreTree(result.adjusted_input, result.final_run.tree, sim);
    double original_total = 0.0;
    for (SetId q = 0; q < original.num_sets(); ++q) {
      original_total +=
          original.set(q).weight * adjusted_score.per_set[q].score;
    }
    result.covered_per_round.push_back(adjusted_score.num_covered);
    const double denom = original.TotalWeight();
    result.score_per_round.push_back(denom > 0 ? original_total / denom : 0);
    result.rounds = round + 1;
    if (adjusted_score.num_covered == input.num_sets()) break;
    if (round + 1 == options.max_rounds) break;

    // Lower thresholds (and optionally boost weights) of uncovered sets.
    bool any_change = false;
    for (SetId q = 0; q < result.adjusted_input.num_sets(); ++q) {
      if (adjusted_score.per_set[q].covered) continue;
      CandidateSet& cs = result.adjusted_input.mutable_set(q);
      const double current =
          cs.delta_override >= 0.0 ? cs.delta_override : sim.delta();
      const double reduced =
          std::max(options.min_delta, current * options.threshold_factor);
      if (reduced < current - 1e-12) {
        cs.delta_override = reduced;
        any_change = true;
      }
      if (options.weight_boost != 1.0) {
        cs.weight *= options.weight_boost;
        any_change = true;
      }
    }
    if (!any_change) break;  // Thresholds bottomed out; further runs futile.
  }
  rounds_counter->Increment(result.rounds);
  return result;
}

}  // namespace ctcr
}  // namespace oct
