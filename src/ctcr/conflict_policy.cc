#include "ctcr/conflict_policy.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace oct {
namespace ctcr {

namespace {
constexpr double kEps = 1e-9;

size_t FloorSafe(double x) {
  if (x <= 0.0) return 0;
  return static_cast<size_t>(std::floor(x + kEps));
}

size_t CeilSafe(double x) {
  if (x <= 0.0) return 0;
  return static_cast<size_t>(std::ceil(x - kEps));
}
}  // namespace

bool ConflictPolicy::CanCoverTogether(const PairStats& p) const {
  const double d_hi = EffectiveDelta(p.hi_delta);
  const double d_lo = EffectiveDelta(p.lo_delta);
  const double hi = static_cast<double>(p.hi_size);
  const double lo = static_cast<double>(p.lo_size);
  const double inter = static_cast<double>(p.inter);
  switch (sim_.variant()) {
    case Variant::kExact:
      // The higher category must equal q1 and contain the lower (= q2).
      return p.inter == p.lo_size;
    case Variant::kPerfectRecall: {
      // C(q2) = q2, C(q1) = q1 ∪ q2; q1's precision is |q1| / |q1 ∪ q2|.
      const double precision = hi / (hi + lo - inter);
      return precision + kEps >= d_hi;
    }
    case Variant::kJaccardCutoff:
    case Variant::kJaccardThreshold: {
      // Minimum items outside the intersection the lower cover must keep:
      // y2 = max{0, ceil(δ2·|q2|) - |I|}; these land in the higher category
      // as precision errors, tolerable while y2 <= |q1|(1-δ1)/δ1.
      const size_t y2 =
          p.inter >= CeilSafe(d_lo * lo) ? 0 : CeilSafe(d_lo * lo) - p.inter;
      return static_cast<double>(y2) <= hi * (1.0 - d_hi) / d_hi + kEps;
    }
    case Variant::kF1Cutoff:
    case Variant::kF1Threshold: {
      // Minimum cover size of q2: ceil(δ2·|q2| / (2-δ2)); F1 of the higher
      // category over q1 with y2 foreign items: 2|q1| / (2|q1| + y2) >= δ1.
      const size_t min_cover = CeilSafe(d_lo * lo / (2.0 - d_lo));
      const size_t y2 = p.inter >= min_cover ? 0 : min_cover - p.inter;
      return static_cast<double>(y2) <= 2.0 * hi * (1.0 - d_hi) / d_hi + kEps;
    }
  }
  return false;
}

bool ConflictPolicy::CanCoverSeparately(const PairStats& p) const {
  OCT_DCHECK_LE(p.inter_strict, p.inter);
  const double d_hi = EffectiveDelta(p.hi_delta);
  const double d_lo = EffectiveDelta(p.lo_delta);
  // Only the strictly-bounded shared items need partitioning.
  const size_t shared = p.inter_strict;
  switch (sim_.variant()) {
    case Variant::kExact:
    case Variant::kPerfectRecall:
      // Recall must be perfect, so no shared strict item may be dropped.
      return shared == 0;
    case Variant::kJaccardCutoff:
    case Variant::kJaccardThreshold: {
      // Each side may exclude up to floor(|qi|(1-δi)) of its own items.
      const size_t x1 = std::min(
          FloorSafe(static_cast<double>(p.hi_size) * (1.0 - d_hi)), shared);
      const size_t x2 = std::min(
          FloorSafe(static_cast<double>(p.lo_size) * (1.0 - d_lo)), shared);
      return shared <= x1 + x2;
    }
    case Variant::kF1Cutoff:
    case Variant::kF1Threshold: {
      // Minimum cover of qi has ceil(δi·|qi|/(2-δi)) items, so qi can
      // exclude |qi| minus that many.
      const size_t min1 =
          CeilSafe(d_hi * static_cast<double>(p.hi_size) / (2.0 - d_hi));
      const size_t min2 =
          CeilSafe(d_lo * static_cast<double>(p.lo_size) / (2.0 - d_lo));
      const size_t x1 = std::min(p.hi_size - std::min(p.hi_size, min1), shared);
      const size_t x2 = std::min(p.lo_size - std::min(p.lo_size, min2), shared);
      return shared <= x1 + x2;
    }
  }
  return false;
}

}  // namespace ctcr
}  // namespace oct
