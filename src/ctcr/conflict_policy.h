// Per-variant closed forms deciding whether two input sets can be covered
// *together* (by categories on one branch) or *separately* (on different
// branches) — Section 3 of the paper. A pair that can be covered neither way
// is a 2-conflict.
//
// Conventions: `hi` denotes the set of the lower rank number (larger set,
// placed higher on the branch), `lo` the higher rank number (placed lower).
// All decisions are functions of (|hi|, |lo|, |hi ∩ lo|) and the per-set
// thresholds; with relaxed per-item bounds, `inter_strict` counts only the
// shared items of bound 1 (items with larger bounds need no partitioning).

#ifndef OCT_CTCR_CONFLICT_POLICY_H_
#define OCT_CTCR_CONFLICT_POLICY_H_

#include <cstddef>

#include "core/similarity.h"

namespace oct {
namespace ctcr {

/// Size statistics of an ordered pair of input sets.
struct PairStats {
  size_t hi_size = 0;      ///< |q1| — lower rank number, placed higher.
  size_t lo_size = 0;      ///< |q2| — higher rank number, placed lower.
  size_t inter = 0;        ///< |q1 ∩ q2|.
  size_t inter_strict = 0; ///< Shared items with bound 1 (== inter normally).
  double hi_delta = -1.0;  ///< Threshold override for q1 (< 0: default).
  double lo_delta = -1.0;  ///< Threshold override for q2.
};

/// Pairwise coverage decisions for one similarity variant.
class ConflictPolicy {
 public:
  explicit ConflictPolicy(const Similarity& sim) : sim_(sim) {}

  /// Can q1 and q2 be covered by categories on one branch, with C(q1) the
  /// higher-placed category?
  bool CanCoverTogether(const PairStats& p) const;

  /// Can q1 and q2 be covered on different branches (partitioning all
  /// strictly-bounded shared items)?
  bool CanCoverSeparately(const PairStats& p) const;

  /// 2-conflict: coverable neither together nor separately.
  bool IsConflict(const PairStats& p) const {
    return !CanCoverTogether(p) && !CanCoverSeparately(p);
  }

  /// Must be covered together: can only be covered on one branch.
  bool MustCoverTogether(const PairStats& p) const {
    return CanCoverTogether(p) && !CanCoverSeparately(p);
  }

  const Similarity& sim() const { return sim_; }

 private:
  double EffectiveDelta(double override_delta) const {
    return override_delta >= 0.0 ? override_delta : sim_.delta();
  }

  Similarity sim_;
};

}  // namespace ctcr
}  // namespace oct

#endif  // OCT_CTCR_CONFLICT_POLICY_H_
