#include "ctcr/ctcr.h"

#include <algorithm>
#include <string>

#include "core/scoring.h"
#include "core/tree_ops.h"
#include "fault/failpoint.h"
#include "kernel/item_set_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace oct {
namespace ctcr {

namespace {

bool UsesThresholdBelowOne(const OctInput& input, const Similarity& sim) {
  if (sim.variant() == Variant::kExact) return false;
  if (sim.delta() < 1.0) return true;
  for (const auto& s : input.sets()) {
    if (s.delta_override >= 0.0 && s.delta_override < 1.0) return true;
  }
  return false;
}

bool UsesItemAssignment(const Similarity& sim) {
  switch (sim.variant()) {
    case Variant::kJaccardCutoff:
    case Variant::kJaccardThreshold:
    case Variant::kF1Cutoff:
    case Variant::kF1Threshold:
      return true;
    case Variant::kPerfectRecall:
    case Variant::kExact:
      return false;  // Recall errors are impossible; no duplicates arise.
  }
  return false;
}

std::string CategoryLabel(const OctInput& input, SetId q) {
  const std::string& label = input.set(q).label;
  if (!label.empty()) return label;
  return "C(q" + std::to_string(q) + ")";
}

}  // namespace

CtcrResult BuildCategoryTree(const OctInput& input, const Similarity& sim,
                             const CtcrOptions& options) {
  OCT_CHECK(input.Validate().ok()) << input.Validate().ToString();
  OCT_SPAN("ctcr/build_category_tree");
  static obs::Counter* runs =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.runs");
  static obs::Counter* conflicts2_total =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.conflicts2");
  static obs::Counter* conflicts3_total =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.conflicts3");
  static obs::Histogram* conflicts_us =
      obs::MetricsRegistry::Default()->GetHistogram("ctcr.conflicts_us");
  static obs::Histogram* mis_us =
      obs::MetricsRegistry::Default()->GetHistogram("ctcr.mis_us");
  static obs::Histogram* build_us =
      obs::MetricsRegistry::Default()->GetHistogram("ctcr.build_us");
  runs->Increment();
  static obs::Counter* deadline_hits =
      obs::MetricsRegistry::Default()->GetCounter("ctcr.deadline_exceeded");

  CtcrResult result;
  result.status = OCT_FAILPOINT("ctcr.build");
  const size_t n = input.num_sets();
  const bool general = UsesThresholdBelowOne(input, sim);

  // Acceleration index shared by every phase of this run (built here once
  // unless the caller supplied one).
  kernel::ItemSetIndex local_index;
  const kernel::ItemSetIndex* index = options.index;
  if (index == nullptr) {
    local_index = kernel::ItemSetIndex::Build(input);
    index = &local_index;
  }

  // Lines 1-9: ranking + conflict (hyper)graph.
  Timer timer;
  result.analysis = AnalyzeConflicts(input, sim, /*find_3conflicts=*/general,
                                     options.pool, index);
  result.seconds_conflicts = timer.ElapsedSeconds();
  conflicts_us->Record(result.seconds_conflicts * 1e6);
  conflicts2_total->Increment(result.analysis.conflicts2.size());
  conflicts3_total->Increment(result.analysis.conflicts3.size());

  // Line 10: SolveMIS.
  timer.Reset();
  std::vector<SetId> independent;
  {
  OCT_SPAN("ctcr/solve_mis");
  if (result.analysis.conflicts3.empty()) {
    // conflicts2 is sorted-unique with first < second, so the bulk builder
    // skips the per-list sorting of Finalize().
    mis::Graph graph =
        mis::Graph::FromSortedUniquePairs(n, result.analysis.conflicts2);
    for (SetId q = 0; q < n; ++q) {
      graph.set_weight(q, input.set(q).weight);
    }
    mis::MisOptions mis_options = options.mis;
    mis_options.cancel = options.cancel;
    const mis::MisSolution sol = mis::SolveMis(graph, mis_options);
    independent.assign(sol.vertices.begin(), sol.vertices.end());
    result.mis_optimal = sol.optimal;
    result.independent_set_weight = sol.weight;
  } else {
    mis::Hypergraph hg(n);
    for (SetId q = 0; q < n; ++q) {
      hg.set_weight(q, input.set(q).weight);
    }
    for (const auto& [a, b] : result.analysis.conflicts2) {
      hg.AddEdge2(a, b);
    }
    for (const auto& t : result.analysis.conflicts3) {
      hg.AddEdge3(t[0], t[1], t[2]);
    }
    hg.Finalize();
    mis::HypergraphSolverOptions hg_options = options.hypergraph;
    hg_options.cancel = options.cancel;
    const mis::MisSolution sol = mis::SolveHypergraphMis(hg, hg_options);
    independent.assign(sol.vertices.begin(), sol.vertices.end());
    result.mis_optimal = sol.optimal;
    result.independent_set_weight = sol.weight;
  }
  }
  result.seconds_mis = timer.ElapsedSeconds();
  mis_us->Record(result.seconds_mis * 1e6);

  // Lines 11-15: one category per surviving set; parent = the closest (max
  // rank) must-cover-together predecessor already in the tree.
  timer.Reset();
  OCT_SPAN("ctcr/construct_tree");
  std::sort(independent.begin(), independent.end(), [&](SetId a, SetId b) {
    return result.analysis.rank[a] < result.analysis.rank[b];
  });
  result.independent_set = independent;
  CategoryTree& tree = result.tree;
  std::vector<NodeId> cat_of(n, kInvalidNode);
  std::vector<char> in_s(n, 0);
  for (SetId q : independent) in_s[q] = 1;
  for (SetId q : independent) {
    NodeId parent = tree.root();
    uint32_t best_rank = 0;
    bool found = false;
    for (SetId p : result.analysis.must_together[q]) {
      if (!in_s[p]) continue;
      if (result.analysis.rank[p] >= result.analysis.rank[q]) continue;
      if (!found || result.analysis.rank[p] > best_rank) {
        best_rank = result.analysis.rank[p];
        parent = cat_of[p];
        found = true;
      }
    }
    OCT_DCHECK(parent != kInvalidNode);
    cat_of[q] = tree.AddCategory(parent, CategoryLabel(input, q), q);
  }

  // Lines 16-19: items appearing only in same-branch sets go to the deepest
  // containing category. Cross-branch items ("duplicates") are deferred to
  // Algorithm 2 for the Jaccard/F1 variants; for Exact and Perfect-Recall
  // (where Algorithm 2 does not run) items with a relaxed bound are placed
  // on up to `bound` branches directly — "each item is duplicated according
  // to its bound" (Section 3.3, Extensions).
  {
    const auto& inverted = index->inverted();
    std::vector<size_t> depth(tree.num_nodes(), 0);
    for (NodeId id : tree.PreOrder()) {
      if (id != tree.root()) depth[id] = depth[tree.node(id).parent] + 1;
    }
    const bool defer_duplicates = UsesItemAssignment(sim);
    std::vector<NodeId> nodes;
    for (ItemId item = 0; item < input.universe_size(); ++item) {
      nodes.clear();
      for (SetId q : inverted[item]) {
        if (in_s[q]) nodes.push_back(cat_of[q]);
      }
      if (nodes.empty()) continue;
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      // Group the containing categories into branch-chains; each chain gets
      // at most one copy, placed at its deepest node. Process nodes deepest
      // first so a chain is identified by its deepest member.
      std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
        if (depth[a] != depth[b]) return depth[a] > depth[b];
        return a < b;
      });
      std::vector<NodeId> chain_heads;  // Deepest node of each chain.
      for (NodeId nd : nodes) {
        bool on_existing_chain = false;
        for (NodeId head : chain_heads) {
          if (tree.OnSameBranch(head, nd)) {
            on_existing_chain = true;
            break;
          }
        }
        if (!on_existing_chain) chain_heads.push_back(nd);
      }
      if (chain_heads.size() == 1) {
        tree.AssignItem(chain_heads[0], item);
        continue;
      }
      if (defer_duplicates) continue;  // Algorithm 2 will place copies.
      // Exact / Perfect-Recall: one copy per chain, up to the bound. When
      // chains exceed the bound (a higher-order bound conflict the pairwise
      // analysis cannot see), the heaviest chains win.
      const uint32_t bound = input.ItemBound(item);
      if (chain_heads.size() > bound) {
        std::vector<double> chain_weight(chain_heads.size(), 0.0);
        for (SetId q : inverted[item]) {
          if (!in_s[q]) continue;
          for (size_t c = 0; c < chain_heads.size(); ++c) {
            if (tree.OnSameBranch(chain_heads[c], cat_of[q])) {
              chain_weight[c] += input.set(q).weight;
            }
          }
        }
        std::vector<size_t> order(chain_heads.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return chain_weight[a] > chain_weight[b];
        });
        std::vector<NodeId> kept;
        for (size_t i = 0; i < bound; ++i) {
          kept.push_back(chain_heads[order[i]]);
        }
        chain_heads = std::move(kept);
      }
      for (NodeId head : chain_heads) tree.AssignItem(head, item);
    }
  }

  // Line 20: Algorithm 2 (Jaccard / F1 variants only).
  if (UsesItemAssignment(sim)) {
    AssignItemsOptions assign;
    assign.target_sets = independent;
    assign.cat_of = cat_of;
    result.assignment = AssignItems(input, sim, assign, &tree);
  }

  // Lines 21-25 are refinement passes: they improve the tree but the model
  // is already valid without them, so they are the first work shed when the
  // build budget runs out.
  const bool out_of_budget = fault::Cancelled(options.cancel);

  // Lines 21-23: intermediate categories (recombine partitioned sets).
  if (!out_of_budget && options.add_intermediate_categories && general &&
      UsesItemAssignment(sim)) {
    result.intermediates_added = AddIntermediateCategories(input, &tree);
  }

  // Lines 24-25: condense (thresholds below 1 only).
  const NodeId exclude_cover =
      options.root_cover_candidate ? kInvalidNode : tree.root();
  if (!out_of_budget && options.condense && general) {
    CondenseTree(input, sim, &tree, /*protect=*/{}, exclude_cover);
  }

  // Line 26: misc category with every unassigned item. Runs unless the
  // caller is building a per-component subtree (oct::delta) and will add
  // the universe-wide misc category once on the spliced tree instead.
  if (options.add_misc_category) AddMiscCategory(input, &tree);
  AnnotateCoveredSets(input, sim, &tree, exclude_cover);
  result.seconds_build = timer.ElapsedSeconds();
  build_us->Record(result.seconds_build * 1e6);
  if (result.status.ok() && fault::Cancelled(options.cancel)) {
    result.status = options.cancel->status();
  }
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_hits->Increment();
  }
  OCT_DCHECK(tree.ValidateModel(input).ok())
      << tree.ValidateModel(input).ToString();
  return result;
}

}  // namespace ctcr
}  // namespace oct
