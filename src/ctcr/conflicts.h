// Conflict enumeration (Sections 3.1-3.3): ranking of the input sets,
// parallel 2-conflict detection over intersecting pairs (driven by the
// kernel::ItemSetIndex candidate-pruning scan — disjoint pairs can always
// be covered separately and never conflict), must-cover-together pair
// extraction, and 3-conflict detection for thresholds < 1.

#ifndef OCT_CTCR_CONFLICTS_H_
#define OCT_CTCR_CONFLICTS_H_

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/input.h"
#include "core/similarity.h"
#include "ctcr/conflict_policy.h"
#include "util/thread_pool.h"

namespace oct {
namespace kernel {
class ItemSetIndex;
}  // namespace kernel

namespace ctcr {

/// The complete conflict structure of an OCT instance.
struct ConflictAnalysis {
  /// SetId -> rank: 0 is the largest set; ties broken by ascending weight
  /// ("largest to smallest, and as a secondary criterion ... lightest to
  /// heaviest"), then by id.
  std::vector<uint32_t> rank;
  /// rank -> SetId.
  std::vector<SetId> by_rank;

  /// 2-conflicts (unordered pairs, first < second).
  std::vector<std::pair<SetId, SetId>> conflicts2;
  /// 3-conflicts (sorted triples).
  std::vector<std::array<SetId, 3>> conflicts3;

  /// Adjacency lists of the must-cover-together relation.
  std::vector<std::vector<SetId>> must_together;

  bool IsConflict2(SetId a, SetId b) const {
    return conflict2_keys.count(PairKey(a, b)) > 0;
  }
  bool IsMustTogether(SetId a, SetId b) const {
    return must_keys.count(PairKey(a, b)) > 0;
  }

  static uint64_t PairKey(SetId a, SetId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_set<uint64_t> conflict2_keys;
  std::unordered_set<uint64_t> must_keys;

  /// Number of intersecting pairs examined (diagnostics / benchmarks).
  size_t pairs_examined = 0;
};

/// Runs the conflict analysis. 3-conflicts are computed only when
/// `find_3conflicts` (CTCR enables it for thresholds < 1). `pool` defaults
/// to the process-wide pool; pass a 1-thread pool for serial execution.
/// `index` is an optional prebuilt kernel::ItemSetIndex over `input`
/// (callers running several phases build it once); when null, a local one
/// is built. Results are identical either way.
ConflictAnalysis AnalyzeConflicts(const OctInput& input,
                                  const Similarity& sim,
                                  bool find_3conflicts = true,
                                  ThreadPool* pool = nullptr,
                                  const kernel::ItemSetIndex* index = nullptr);

/// Weighted average number of 2-conflicts per input set — the C2(Q,W)
/// quantity of Theorem 3.1 (the Exact-variant approximation guarantee).
double WeightedAverageConflicts(const OctInput& input,
                                const ConflictAnalysis& analysis);

}  // namespace ctcr
}  // namespace oct

#endif  // OCT_CTCR_CONFLICTS_H_
