#include "data/preprocess.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "kernel/bitset.h"
#include "kernel/pairwise.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace data {

namespace {

/// Whether the merge band measures F1 (the variant's raw function for
/// Jaccard/F1; Jaccard for the asymmetric / binary variants).
bool MergeBandUsesF1(const Similarity& sim) {
  switch (sim.variant()) {
    case Variant::kF1Cutoff:
    case Variant::kF1Threshold:
      return true;
    default:
      return false;
  }
}

/// Raw symmetric similarity used for the merge band, from precomputed
/// sizes and intersection.
double MergeSimilarityFromSizes(const Similarity& sim, size_t size_a,
                                size_t size_b, size_t inter) {
  return MergeBandUsesF1(sim) ? F1FromSizes(size_a, size_b, inter)
                              : JaccardFromSizes(size_a, size_b, inter);
}

/// Number of distinct existing-tree top-level subtrees the items of `set`
/// occupy. The paper's filter targets queries "scattered across many
/// *distant* categories"; sibling leaves under one department are close, so
/// the spread is measured at the department (root-child) level.
size_t BranchSpread(const std::vector<NodeId>& top_level_of_item,
                    const ItemSet& set) {
  std::unordered_set<NodeId> branches;
  for (ItemId item : set) {
    const NodeId node = top_level_of_item[item];
    if (node != kInvalidNode) branches.insert(node);
  }
  return branches.size();
}

}  // namespace

double DefaultRelevanceThreshold(Variant variant) {
  switch (variant) {
    case Variant::kPerfectRecall:
    case Variant::kExact:
      return 0.9;
    default:
      return 0.8;
  }
}

void MergeSimilarSets(const Similarity& sim, size_t max_passes,
                      std::vector<CandidateSet>* sets) {
  const double band_low = sim.delta() + 0.75 * (1.0 - sim.delta());
  const bool use_f1 = MergeBandUsesF1(sim);
  static obs::Counter* bitset_hits =
      obs::MetricsRegistry::Default()->GetCounter("kernel.bitset_hits");
  // Universe bound for the probe bitmap (items are sorted, so the last one
  // of each set is its maximum).
  size_t universe = 0;
  for (const CandidateSet& cs : *sets) {
    if (!cs.items.empty()) {
      universe = std::max<size_t>(universe, cs.items.items().back() + 1);
    }
  }
  kernel::BitSet probe(universe);
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool merged_any = false;
    // Candidate pairs via a per-pass inverted index over items.
    std::unordered_map<ItemId, std::vector<size_t>> index;
    for (size_t i = 0; i < sets->size(); ++i) {
      for (ItemId item : (*sets)[i].items) index[item].push_back(i);
    }
    std::vector<char> dead(sets->size(), 0);
    std::vector<size_t> candidates;
    for (size_t i = 0; i < sets->size(); ++i) {
      if (dead[i]) continue;
      // Collect intersecting partners with a larger index. Prefix filter:
      // a partner inside the band needs an intersection of at least o_min
      // items, so it must share one of the first |i| - o_min + 1 items
      // (kernel/pairwise.h); items past the prefix cannot produce an
      // in-band partner on their own. Partners that only enter the band
      // after this set grows through merges are picked up by a later pass.
      const ItemSet& items_i = (*sets)[i].items;
      const size_t o_min =
          use_f1 ? kernel::MinOverlapForF1(items_i.size(), band_low)
                 : kernel::MinOverlapForJaccard(items_i.size(), band_low);
      const size_t prefix =
          items_i.size() >= o_min ? items_i.size() - o_min + 1 : 0;
      candidates.clear();
      for (size_t p = 0; p < prefix; ++p) {
        for (size_t j : index[items_i.items()[p]]) {
          if (j > i && !dead[j]) candidates.push_back(j);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      // Probe candidates against a bitmap of set i — O(|candidate|) per
      // pair instead of a merge, and after a merge only the new items need
      // setting (the union grows monotonically).
      probe.SetAll(items_i);
      for (size_t j : candidates) {
        if (dead[i] || dead[j]) continue;
        auto& a = (*sets)[i];
        auto& b = (*sets)[j];
        const size_t inter = probe.IntersectionCount(b.items);
        bitset_hits->Increment();
        const double s =
            MergeSimilarityFromSizes(sim, a.items.size(), b.items.size(), inter);
        if (s + 1e-12 >= band_low) {
          // Merge j into i: union of items, combined weight; keep the label
          // of the heavier set.
          if (b.weight > a.weight) a.label = b.label;
          a.items = a.items.Union(b.items);
          a.weight += b.weight;
          probe.SetAll(b.items);
          dead[j] = 1;
          merged_any = true;
        }
      }
      probe.ClearAll((*sets)[i].items);
    }
    std::vector<CandidateSet> kept;
    kept.reserve(sets->size());
    for (size_t i = 0; i < sets->size(); ++i) {
      if (!dead[i]) kept.push_back(std::move((*sets)[i]));
    }
    *sets = std::move(kept);
    if (!merged_any) break;
  }
}

OctInput BuildOctInput(const SearchEngine& engine,
                       const std::vector<LoggedQuery>& log,
                       const CategoryTree& existing_tree,
                       const Similarity& sim,
                       const PreprocessOptions& options,
                       PreprocessStats* stats) {
  OCT_SPAN("data/build_oct_input");
  static obs::Counter* raw_queries_counter =
      obs::MetricsRegistry::Default()->GetCounter("data.raw_queries");
  static obs::Counter* kept_sets_counter =
      obs::MetricsRegistry::Default()->GetCounter("data.kept_sets");
  PreprocessStats local;
  local.raw_queries = log.size();
  raw_queries_counter->Increment(log.size());

  // Top-level existing-tree subtree per item (for the scatter filter).
  const size_t universe = engine.catalog().num_items();
  std::vector<NodeId> placement(universe, kInvalidNode);
  {
    OCT_SPAN("data/placement_map");
    for (NodeId id = 0; id < existing_tree.num_nodes(); ++id) {
      if (!existing_tree.IsAlive(id)) continue;
      // Walk up to the child of the root.
      NodeId top = id;
      while (top != existing_tree.root() &&
             existing_tree.node(top).parent != existing_tree.root() &&
             existing_tree.node(top).parent != kInvalidNode) {
        top = existing_tree.node(top).parent;
      }
      for (ItemId item : existing_tree.node(id).direct_items) {
        if (item < universe) placement[item] = top;
      }
    }
  }

  // Stage 1a: frequency filter over the window (the window is the full 90
  // days by default; a small window with recent_window_only capitalizes on
  // short-lived trends).
  std::vector<const LoggedQuery*> frequent;
  for (const LoggedQuery& lq : log) {
    if (lq.MinDailyRecent(options.window_days) >= options.min_daily_count) {
      frequent.push_back(&lq);
    }
  }
  local.after_frequency_filter = frequent.size();

  // Stage 2 + 1b: result sets, then the branch-scatter filter.
  std::vector<CandidateSet> sets;
  sets.reserve(frequent.size());
  {
    OCT_SPAN("data/result_sets");
    for (const LoggedQuery* lq : frequent) {
      ItemSet result =
          engine.ResultSet(lq->query, options.relevance_threshold);
      if (result.empty()) {
        ++local.empty_result_sets;
        continue;
      }
      if (BranchSpread(placement, result) > options.max_existing_branches) {
        continue;
      }
      CandidateSet cs;
      cs.items = std::move(result);
      cs.weight = options.uniform_weights
                      ? 1.0
                      : (options.recent_window_only
                             ? lq->AverageDailyRecent(options.window_days)
                             : lq->AverageDaily());
      cs.label = lq->query.Text(engine.catalog());
      sets.push_back(std::move(cs));
    }
  }
  local.after_scatter_filter = sets.size();

  // Stage 4: merge near-duplicate result sets.
  if (options.merge_similar) {
    OCT_SPAN("data/merge_similar_sets");
    MergeSimilarSets(sim, options.merge_passes, &sets);
  }
  local.after_merge = sets.size();
  kept_sets_counter->Increment(sets.size());

  OctInput input(universe);
  for (auto& cs : sets) input.Add(std::move(cs));
  OCT_CHECK(input.Validate().ok()) << input.Validate().ToString();
  if (stats != nullptr) *stats = local;
  return input;
}

}  // namespace data
}  // namespace oct
