// Data preparation pipeline (Section 5.1): turns a raw query log into an
// OCT input. Steps, in order:
//   (1) clean the query set  — frequency filter (min daily count,
//       consecutively over the window) and branch-scatter filter (drop
//       queries whose result set spans too many existing-tree branches);
//   (2) compute result sets  — relevance-thresholded search-engine hits;
//   (3) assign weights       — average daily submissions;
//   (4) merge similar queries — two result sets with similarity in
//       [δ + 3/4 (1 - δ), 1] become one set with the combined weight.

#ifndef OCT_DATA_PREPROCESS_H_
#define OCT_DATA_PREPROCESS_H_

#include <vector>

#include "core/category_tree.h"
#include "core/input.h"
#include "core/similarity.h"
#include "data/query_log.h"
#include "data/search_engine.h"

namespace oct {
namespace data {

struct PreprocessOptions {
  /// Minimum submissions per day, required on every day of the window (the
  /// paper's confidential X).
  uint32_t min_daily_count = 2;
  /// Window for the frequency filter, in days (the platform rebuilds the
  /// tree every 90 days).
  size_t window_days = 90;
  /// Use only the most recent `window_days` (set small to capitalize on
  /// short-lived trends, Section 5.4).
  bool recent_window_only = false;
  /// Drop queries whose result items sit in more than this many branches of
  /// the existing tree (Section 5.1: 10; "fewer than 1% of the queries").
  size_t max_existing_branches = 10;
  /// Relevance threshold for result sets: 0.8 for Jaccard/F1 experiments,
  /// 0.9 for Perfect-Recall/Exact (Section 5.1).
  double relevance_threshold = 0.8;
  /// Disable to skip step (4) — ablation knob.
  bool merge_similar = true;
  /// Maximum merge passes.
  size_t merge_passes = 3;
  /// Assign uniform weight 1 instead of query frequencies (public datasets).
  bool uniform_weights = false;
};

/// Per-stage survivor counts (reported by the benches; the paper notes the
/// scatter filter drops < 1% and merging halves the XYZ datasets).
struct PreprocessStats {
  size_t raw_queries = 0;
  size_t after_frequency_filter = 0;
  size_t empty_result_sets = 0;
  size_t after_scatter_filter = 0;
  size_t after_merge = 0;
};

/// The paper's default relevance threshold for a variant.
double DefaultRelevanceThreshold(Variant variant);

/// Runs the pipeline. `existing_tree` drives the branch-scatter filter
/// (pass the ET baseline tree). `sim` controls the merge band.
OctInput BuildOctInput(const SearchEngine& engine,
                       const std::vector<LoggedQuery>& log,
                       const CategoryTree& existing_tree,
                       const Similarity& sim,
                       const PreprocessOptions& options,
                       PreprocessStats* stats = nullptr);

/// Step (4) alone, exposed for tests and ablations: merges pairs of sets
/// whose raw similarity lies in [δ + 3/4 (1 - δ), 1], combining weights.
void MergeSimilarSets(const Similarity& sim, size_t max_passes,
                      std::vector<CandidateSet>* sets);

}  // namespace data
}  // namespace oct

#endif  // OCT_DATA_PREPROCESS_H_
