// Search-engine substrate: evaluates conjunctive attribute queries over a
// catalog, returning relevance-scored hits like the platform engine
// (Elasticsearch) of Section 5.1. Relevance is high for full matches, lower
// for near-misses, with calibrated noise and occasional mislabeled items
// (the "Nike Blazer" effect) so that thresholding at 0.8 / 0.9 reproduces
// the paper's result-set composition, noise tail included.

#ifndef OCT_DATA_SEARCH_ENGINE_H_
#define OCT_DATA_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/item_set.h"
#include "data/catalog.h"
#include "util/status.h"

namespace oct {
namespace data {

/// A conjunctive search query: attribute == value for every conjunct.
struct Query {
  std::vector<std::pair<uint16_t, uint16_t>> conjuncts;  // (attr, value)
  /// Paraphrase index: 0 for the canonical phrasing; higher values denote
  /// differently-worded queries with the same intent ("black nike shirt" vs
  /// "nike shirt black"). Phrasing perturbs the engine's relevance noise
  /// (different tokenization), so paraphrases get near- but not fully
  /// identical result sets — the near-duplicates the preprocessing merge
  /// stage collapses.
  uint16_t phrasing = 0;

  /// Stable text rendering, e.g. "black nike shirt".
  std::string Text(const Catalog& catalog) const;

  /// Stable 64-bit key for dedup and per-query determinism (phrasing-
  /// sensitive).
  uint64_t Key() const;

  /// Key of the underlying intent (phrasing-insensitive): paraphrases of
  /// one query share it. Drives the bulk of the relevance noise so
  /// paraphrases rank items almost identically.
  uint64_t BaseKey() const;
};

struct SearchOptions {
  /// Mean relevance of items matching every conjunct.
  double full_match_relevance = 0.93;
  /// Mean relevance of items matching all conjuncts but one.
  double partial_match_relevance = 0.55;
  /// Relevance noise amplitude.
  double noise = 0.06;
  /// Expected number of unrelated high-relevance items injected per query
  /// (search-engine misclassification surviving the threshold).
  double mislabel_per_query = 0.8;
  /// Maximum hits returned (top-k truncation, as in the public datasets).
  size_t top_k = 500;
  uint64_t seed = 1;
};

/// Deterministic relevance-scored retrieval over a catalog.
class SearchEngine {
 public:
  struct Hit {
    ItemId item;
    double relevance;
  };

  SearchEngine(const Catalog* catalog, SearchOptions options);

  /// OK when the query is well-formed against this catalog: at least one
  /// conjunct, every (attr, value) within schema bounds.
  Status ValidateQuery(const Query& query) const;

  /// Hits sorted by descending relevance, truncated to top_k.
  /// Precondition: ValidateQuery(query).ok() — aborts otherwise; callers
  /// with untrusted queries use TrySearch.
  std::vector<Hit> Search(const Query& query) const;

  /// Validating variant: InvalidArgument instead of aborting on a
  /// malformed query (replayed logs, external callers).
  Result<std::vector<Hit>> TrySearch(const Query& query) const;

  /// Items with relevance >= threshold (Section 5.1 "Computing result
  /// sets"; 0.8 for Jaccard/F1 runs, 0.9 for Perfect-Recall/Exact).
  /// Precondition: ValidateQuery(query).ok().
  ItemSet ResultSet(const Query& query, double relevance_threshold) const;

  /// Validating variant of ResultSet.
  Result<ItemSet> TryResultSet(const Query& query,
                               double relevance_threshold) const;

  const Catalog& catalog() const { return *catalog_; }
  const SearchOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  SearchOptions options_;
  /// postings_[attr][value] = sorted items having that value.
  std::vector<std::vector<std::vector<ItemId>>> postings_;
};

}  // namespace data
}  // namespace oct

#endif  // OCT_DATA_SEARCH_ENGINE_H_
