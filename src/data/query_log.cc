#include "data/query_log.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace oct {
namespace data {

double LoggedQuery::AverageDaily() const {
  if (daily_counts.empty()) return 0.0;
  double total = 0.0;
  for (uint32_t c : daily_counts) total += c;
  return total / static_cast<double>(daily_counts.size());
}

double LoggedQuery::AverageDailyRecent(size_t days) const {
  if (daily_counts.empty()) return 0.0;
  days = std::min(days, daily_counts.size());
  double total = 0.0;
  for (size_t i = daily_counts.size() - days; i < daily_counts.size(); ++i) {
    total += daily_counts[i];
  }
  return total / static_cast<double>(days);
}

uint32_t LoggedQuery::MinDailyRecent(size_t days) const {
  if (daily_counts.empty()) return 0;
  days = std::min(days, daily_counts.size());
  uint32_t min_count = UINT32_MAX;
  for (size_t i = daily_counts.size() - days; i < daily_counts.size(); ++i) {
    min_count = std::min(min_count, daily_counts[i]);
  }
  return min_count;
}

std::vector<LoggedQuery> GenerateQueryLog(const Catalog& catalog,
                                          const QueryLogOptions& options) {
  Rng rng(options.seed);
  const size_t num_attrs = catalog.num_attributes();
  std::vector<ZipfSampler> value_samplers;
  value_samplers.reserve(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    value_samplers.emplace_back(
        catalog.schema().attributes[a].values.size(),
        catalog.schema().attributes[a].zipf_exponent);
  }

  // Distinct queries: 1-3 conjuncts; the type attribute appears with the
  // configured probability; other attributes are drawn uniformly; values by
  // the per-attribute popularity distribution.
  std::vector<LoggedQuery> log;
  std::vector<size_t> base_of;  // Paraphrase source index, SIZE_MAX if none.
  std::unordered_set<uint64_t> seen;
  size_t attempts = 0;
  const size_t max_attempts = options.num_queries * 200 + 1000;
  while (log.size() < options.num_queries && ++attempts < max_attempts) {
    // Paraphrase an earlier multi-conjunct query with some probability.
    if (!log.empty() && rng.NextDouble() < options.paraphrase_fraction) {
      const size_t base = rng.NextBelow(log.size());
      if (log[base].query.conjuncts.size() >= 2) {
        Query q = log[base].query;
        q.phrasing = static_cast<uint16_t>(1 + rng.NextBelow(3));
        if (seen.insert(q.Key()).second) {
          LoggedQuery lq;
          lq.query = std::move(q);
          base_of.push_back(base);
          log.push_back(std::move(lq));
        }
        continue;
      }
    }
    Query q;
    const double r = rng.NextDouble();
    const size_t num_conjuncts = r < 0.3 ? 1 : (r < 0.8 ? 2 : 3);
    std::vector<uint16_t> attrs;
    if (rng.NextDouble() < options.type_conjunct_probability) {
      attrs.push_back(0);
    }
    while (attrs.size() < num_conjuncts) {
      const uint16_t a =
          static_cast<uint16_t>(1 + rng.NextBelow(num_attrs - 1));
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        attrs.push_back(a);
      }
    }
    std::sort(attrs.begin(), attrs.end());
    for (uint16_t a : attrs) {
      q.conjuncts.push_back(
          {a, static_cast<uint16_t>(value_samplers[a].Sample(&rng))});
    }
    if (!seen.insert(q.Key()).second) continue;
    LoggedQuery lq;
    lq.query = std::move(q);
    base_of.push_back(SIZE_MAX);
    log.push_back(std::move(lq));
  }

  // Popularity: Zipf over the query index; paraphrases inherit a fraction
  // of their base query's traffic (same intent splits across phrasings);
  // daily counts with ±20% jitter.
  const ZipfSampler popularity(std::max<size_t>(log.size(), 1),
                               options.zipf_exponent);
  const double top_pmf = log.empty() ? 1.0 : popularity.Pmf(0);
  std::vector<double> means(log.size(), 0.0);
  for (size_t i = 0; i < log.size(); ++i) {
    auto& lq = log[i];
    lq.daily_counts.assign(options.days, 0);
    double mean_daily = options.top_query_daily * popularity.Pmf(i) / top_pmf;
    if (base_of[i] != SIZE_MAX) {
      mean_daily = means[base_of[i]] * (0.25 + 0.5 * rng.NextDouble());
    }
    means[i] = mean_daily;
    const bool trend = rng.NextDouble() < options.trend_fraction;
    for (size_t day = 0; day < options.days; ++day) {
      double mean = mean_daily;
      if (trend) {
        if (day + options.trend_days < options.days) {
          mean = 0.0;  // Inactive before the spike window.
        } else {
          mean = mean_daily * 6.0;  // Spike.
        }
      }
      const double jitter = 1.0 + 0.2 * (2.0 * rng.NextDouble() - 1.0);
      lq.daily_counts[day] =
          static_cast<uint32_t>(std::llround(std::max(0.0, mean * jitter)));
    }
  }
  return log;
}

}  // namespace data
}  // namespace oct
