// Query-log substrate: distinct conjunctive queries with 90 days of daily
// submission counts — Zipf-distributed popularity, Poisson-like daily
// jitter, and a configurable fraction of short-lived trend queries (the
// "Kobe memorabilia" effect of Section 5.4).

#ifndef OCT_DATA_QUERY_LOG_H_
#define OCT_DATA_QUERY_LOG_H_

#include <cstdint>
#include <vector>

#include "data/catalog.h"
#include "data/search_engine.h"

namespace oct {
namespace data {

/// One distinct query with its daily submission counts (day 0 = oldest).
struct LoggedQuery {
  Query query;
  std::vector<uint32_t> daily_counts;

  /// Average submissions per day over the whole window.
  double AverageDaily() const;
  /// Average over the most recent `days` days.
  double AverageDailyRecent(size_t days) const;
  /// Minimum daily count over the most recent `days` days (the paper's
  /// "at least X times a day, consecutively" filter).
  uint32_t MinDailyRecent(size_t days) const;
};

struct QueryLogOptions {
  size_t num_queries = 1000;
  size_t days = 90;
  /// Zipf exponent of query popularity.
  double zipf_exponent = 1.05;
  /// Daily submissions of the most popular query.
  double top_query_daily = 4000.0;
  /// Fraction of queries that are short-lived trends (active only in the
  /// final `trend_days` with a spike).
  double trend_fraction = 0.04;
  size_t trend_days = 14;
  /// Probability that a query includes the product-type attribute.
  double type_conjunct_probability = 0.8;
  /// Fraction of the log that paraphrases an earlier query (same conjuncts,
  /// different phrasing -> near-duplicate result set). Real logs are full
  /// of these; the preprocessing merge stage collapses them (Section 5.1:
  /// merging "reduced the number of queries by more than half").
  double paraphrase_fraction = 0.55;
  uint64_t seed = 7;
};

/// Generates `num_queries` *distinct* queries over the catalog's attribute
/// space with daily counts. Deterministic in the seed.
std::vector<LoggedQuery> GenerateQueryLog(const Catalog& catalog,
                                          const QueryLogOptions& options);

}  // namespace data
}  // namespace oct

#endif  // OCT_DATA_QUERY_LOG_H_
