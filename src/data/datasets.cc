#include "data/datasets.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace oct {
namespace data {

Result<DatasetSpec> TrySpecFor(char name) {
  DatasetSpec spec;
  spec.name = name;
  switch (name) {
    // Raw query counts are ~2.2x the paper's post-preprocessing sizes (450 /
    // 1.2K / 3K / 20K); the frequency filter, scatter filter, and merging
    // together keep a bit under half.
    case 'A':
      spec.num_items = 28'000;
      spec.num_raw_queries = 1'000;
      spec.seed = 101;
      break;
    case 'B':
      spec.num_items = 94'000;
      spec.num_raw_queries = 2'700;
      spec.seed = 102;
      break;
    case 'C':
      spec.num_items = 340'000;
      spec.num_raw_queries = 6'700;
      spec.seed = 103;
      break;
    case 'D':
      spec.electronics = true;
      spec.num_items = 1'200'000;
      spec.num_raw_queries = 44'000;
      spec.seed = 104;
      break;
    case 'E':
      spec.electronics = true;
      spec.num_items = 60'000;
      spec.num_raw_queries = 2'200;
      spec.uniform_weights = true;
      spec.seed = 105;
      break;
    default:
      return Status::InvalidArgument(
          std::string("unknown dataset '") + name +
          "' (registry has 'A'..'E')");
  }
  return spec;
}

DatasetSpec SpecFor(char name) {
  auto spec = TrySpecFor(name);
  OCT_CHECK(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

double BenchScale() {
  constexpr double kDefault = 0.08;
  const char* env = std::getenv("OCT_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return kDefault;
  const std::string s(env);
  if (s == "full") return 1.0;
  const double v = std::atof(env);
  if (!(v > 0.0 && v <= 1.0)) {
    // Operator input: degrade to the default rather than aborting a serving
    // or bench process over a typo.
    OCT_LOG_WARNING << "OCT_BENCH_SCALE='" << s
                    << "' is not in (0,1] or 'full'; using default "
                    << kDefault;
    return kDefault;
  }
  return v;
}

Result<Dataset> TryMakeDataset(char name, const Similarity& sim, double scale,
                               const DatasetOptions& options) {
  OCT_ASSIGN_OR_RETURN(const DatasetSpec spec, TrySpecFor(name));
  if (!(scale > 0.0)) {
    return Status::InvalidArgument("dataset scale must be positive, got " +
                                   std::to_string(scale));
  }
  Dataset ds;
  ds.name = std::string(1, spec.name);

  const size_t num_items = std::max<size_t>(
      2'000, static_cast<size_t>(static_cast<double>(spec.num_items) * scale));
  const size_t raw_queries = std::max<size_t>(
      150, static_cast<size_t>(static_cast<double>(spec.num_raw_queries) *
                               scale));

  DomainSchema schema =
      spec.electronics ? ElectronicsSchema() : FashionSchema();
  ds.catalog = std::make_unique<Catalog>(
      Catalog::Generate(std::move(schema), num_items, spec.seed));

  SearchOptions search;
  search.seed = spec.seed * 31 + 7;
  // Result-set granularity tracks the catalog so the overlap structure is
  // scale-invariant: roughly |U| / 60 items per set, capped.
  search.top_k = std::clamp<size_t>(num_items / 60, 60, 800);
  ds.engine = std::make_unique<SearchEngine>(ds.catalog.get(), search);

  ds.existing_tree = baselines::BuildExistingTree(*ds.catalog);

  QueryLogOptions log_opts;
  log_opts.num_queries = raw_queries;
  log_opts.seed = spec.seed * 131 + 17;
  // Volume scales with the log so the frequency filter keeps a stable
  // fraction across dataset sizes.
  log_opts.top_query_daily =
      std::max(1'000.0, 2.5 * static_cast<double>(raw_queries));
  const std::vector<LoggedQuery> log = GenerateQueryLog(*ds.catalog, log_opts);

  PreprocessOptions pre;
  pre.relevance_threshold = DefaultRelevanceThreshold(sim.variant());
  pre.uniform_weights = spec.uniform_weights;
  pre.merge_similar = options.merge_similar;
  pre.recent_window_only = options.recent_window_only;
  pre.window_days = options.window_days;
  ds.input = BuildOctInput(*ds.engine, log, ds.existing_tree, sim, pre,
                           &ds.stats);
  return ds;
}

Dataset MakeDataset(char name, const Similarity& sim, double scale,
                    const DatasetOptions& options) {
  auto ds = TryMakeDataset(name, sim, scale, options);
  OCT_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Dataset MakeDataset(char name, const Similarity& sim) {
  return MakeDataset(name, sim, BenchScale());
}

}  // namespace data
}  // namespace oct
