#include "data/catalog.h"

#include <algorithm>

#include "util/logging.h"

namespace oct {
namespace data {

namespace {

std::vector<std::string> Numbered(const std::string& prefix, size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(prefix + std::to_string(i + 1));
  }
  return out;
}

}  // namespace

DomainSchema FashionSchema() {
  DomainSchema schema;
  schema.name = "fashion";
  schema.attributes = {
      {"type",
       {"shirt", "pants", "dress", "jacket", "shoes", "skirt", "sweater",
        "coat", "shorts", "blazer", "hoodie", "socks"},
       0.9},
      {"brand",
       {"nike",   "adidas",  "puma",  "reebok", "umbro",  "zara",
        "hm",     "gucci",   "levis", "gap",    "uniqlo", "asics",
        "fila",   "lacoste", "vans",  "diesel", "mango",  "hugo",
        "armani", "celio",   "next",  "espirit"},
       1.05},
      {"color",
       {"black", "white", "blue", "red", "grey", "green", "pink", "beige",
        "brown", "yellow", "purple", "orange"},
       0.8},
      {"sleeve", {"long-sleeve", "short-sleeve", "sleeveless"}, 0.6},
      {"gender", {"men", "women", "kids", "unisex"}, 0.5},
      {"material", {"cotton", "wool", "polyester", "linen", "denim", "silk"},
       0.7},
  };
  return schema;
}

DomainSchema ElectronicsSchema() {
  DomainSchema schema;
  schema.name = "electronics";
  schema.attributes = {
      {"type",
       {"phone", "camera", "laptop", "tv", "memory-card", "headphones",
        "tablet", "charger", "case", "speaker", "monitor", "keyboard",
        "mouse", "router", "drone", "smartwatch"},
       0.9},
      {"brand", Numbered("brand", 28), 1.05},
      {"capacity",
       {"16gb", "32gb", "64gb", "128gb", "256gb", "512gb", "1tb", "2tb"},
       0.8},
      {"screen", {"small", "medium", "large", "xlarge"}, 0.6},
      {"color", {"black", "white", "silver", "grey", "gold", "blue", "red"},
       0.8},
      {"condition", {"new", "refurbished", "used"}, 1.0},
  };
  return schema;
}

Catalog Catalog::Generate(DomainSchema schema, size_t num_items,
                          uint64_t seed) {
  OCT_CHECK_GT(schema.attributes.size(), 0u);
  Catalog catalog(std::move(schema), num_items);
  const size_t num_attrs = catalog.schema_.attributes.size();
  catalog.values_.resize(num_items * num_attrs);
  Rng rng(seed);
  std::vector<ZipfSampler> samplers;
  samplers.reserve(num_attrs);
  for (const auto& attr : catalog.schema_.attributes) {
    samplers.emplace_back(attr.values.size(), attr.zipf_exponent);
  }
  for (size_t item = 0; item < num_items; ++item) {
    // The type value skews the popularity order of the other attributes
    // (rotation by a type-dependent offset) so brands/colors correlate with
    // types, as in real catalogs.
    const size_t type_value = samplers[0].Sample(&rng);
    catalog.values_[item * num_attrs] = static_cast<uint16_t>(type_value);
    for (size_t a = 1; a < num_attrs; ++a) {
      const size_t raw = samplers[a].Sample(&rng);
      const size_t cardinality = catalog.schema_.attributes[a].values.size();
      const size_t rotated = (raw + type_value * 3) % cardinality;
      catalog.values_[item * num_attrs + a] = static_cast<uint16_t>(rotated);
    }
  }
  return catalog;
}

std::string Catalog::Title(ItemId item) const {
  // brand color <other attrs> type — mirrors listing-title conventions.
  std::vector<std::string> parts;
  const size_t num_attrs = schema_.attributes.size();
  for (size_t a = 1; a < num_attrs; ++a) {
    parts.push_back(ValueName(a, value(item, a)));
  }
  parts.push_back(ValueName(0, value(item, 0)));
  std::string title = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    title += " ";
    title += parts[i];
  }
  return title;
}

ItemSet Catalog::ItemsWithValue(size_t attr, uint16_t target) const {
  std::vector<ItemId> out;
  for (size_t item = 0; item < num_items_; ++item) {
    if (value(static_cast<ItemId>(item), attr) == target) {
      out.push_back(static_cast<ItemId>(item));
    }
  }
  return ItemSet::FromSorted(std::move(out));
}

std::vector<float> Catalog::SemanticEmbedding(ItemId item) const {
  size_t dims = 0;
  for (const auto& attr : schema_.attributes) dims += attr.values.size();
  std::vector<float> emb(dims, 0.0f);
  size_t offset = 0;
  // Deterministic per-item jitter so identical products do not collapse to
  // one point (real embeddings never coincide exactly).
  Rng jitter(0x5EEDu ^ (static_cast<uint64_t>(item) * 0x9E3779B97F4A7C15ULL));
  for (size_t a = 0; a < schema_.attributes.size(); ++a) {
    const size_t card = schema_.attributes[a].values.size();
    emb[offset + value(item, a)] = 1.0f;
    offset += card;
  }
  for (auto& x : emb) {
    x += static_cast<float>(jitter.NextGaussian()) * 0.02f;
  }
  return emb;
}

}  // namespace data
}  // namespace oct
