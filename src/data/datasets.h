// Dataset registry: synthetic stand-ins for the paper's evaluation datasets
// (Section 5.2) —
//   A: Fashion,      450 queries /  28K items (post-preprocessing)
//   B: Fashion,     1.2K queries /  94K items
//   C: Fashion,       3K queries / 340K items
//   D: Electronics,  20K queries / 1.2M items (100K raw before merging)
//   E: public-style Electronics, uniform weights (BestBuy-over-Amazon)
//
// Sizes scale with OCT_BENCH_SCALE (env; default keeps every bench fast on
// a laptop; "full" or "1" reproduces paper-sized instances).

#ifndef OCT_DATA_DATASETS_H_
#define OCT_DATA_DATASETS_H_

#include <memory>
#include <string>

#include "baselines/existing_tree.h"
#include "core/input.h"
#include "core/similarity.h"
#include "data/catalog.h"
#include "data/preprocess.h"
#include "data/query_log.h"
#include "data/search_engine.h"
#include "util/status.h"

namespace oct {
namespace data {

/// A fully materialized dataset: catalog + engine + existing tree + the
/// preprocessed OCT input for one variant.
struct Dataset {
  std::string name;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SearchEngine> engine;
  CategoryTree existing_tree;
  OctInput input;
  PreprocessStats stats;
};

/// Generation parameters of one registry entry.
struct DatasetSpec {
  char name = 'A';
  bool electronics = false;
  size_t num_items = 0;
  size_t num_raw_queries = 0;
  bool uniform_weights = false;
  uint64_t seed = 0;
};

/// Registry entry for 'A'..'E'; InvalidArgument for anything else.
Result<DatasetSpec> TrySpecFor(char name);

/// Registry entry for 'A'..'E' (paper-scale sizes; scaled at build time).
/// Aborts on unknown names — callers with untrusted input use TrySpecFor.
DatasetSpec SpecFor(char name);

/// Bench scale factor from OCT_BENCH_SCALE (default 0.08; "full" = 1.0).
/// An unparsable or out-of-range value logs a warning and falls back to
/// the default instead of aborting (env vars are operator input).
double BenchScale();

/// Optional knobs for MakeDataset.
struct DatasetOptions {
  /// Disable the query-merging stage (used by the train/test experiment so
  /// near-duplicate result sets can land on both sides of a split, as in
  /// real logs where related queries survive preprocessing).
  bool merge_similar = true;
  /// Use only the most recent days for filtering/weighting (trend capture).
  bool recent_window_only = false;
  size_t window_days = 90;
};

/// Builds dataset `name` ('A'..'E') for the given variant (the variant
/// picks the relevance threshold and the merge band) at `scale` times the
/// paper size. InvalidArgument on an unknown name or non-positive scale.
Result<Dataset> TryMakeDataset(char name, const Similarity& sim, double scale,
                               const DatasetOptions& options = {});

/// Aborting convenience wrappers over TryMakeDataset (trusted callers:
/// benches, tests, examples with hard-coded names).
Dataset MakeDataset(char name, const Similarity& sim, double scale,
                    const DatasetOptions& options = {});

/// MakeDataset at BenchScale().
Dataset MakeDataset(char name, const Similarity& sim);

}  // namespace data
}  // namespace oct

#endif  // OCT_DATA_DATASETS_H_
