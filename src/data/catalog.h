// Synthetic e-commerce catalog substrate.
//
// The paper evaluates on private eBay datasets (Fashion and Electronics
// domains) and public query/result datasets. Those are not redistributable,
// so this module generates catalogs with the same *combinatorial* structure
// the algorithms consume: items carrying categorical attributes (type,
// brand, color, ...) with Zipf-distributed values, from which conjunctive
// queries induce overlapping, weighted result sets. See DESIGN.md,
// "Substitutions".

#ifndef OCT_DATA_CATALOG_H_
#define OCT_DATA_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/item_set.h"
#include "util/rng.h"

namespace oct {
namespace data {

/// One categorical attribute: a name, its value vocabulary, and the Zipf
/// exponent of the value popularity distribution.
struct AttributeSchema {
  std::string name;
  std::vector<std::string> values;
  double zipf_exponent = 1.0;
};

/// A product domain: a name and an attribute list. Attribute 0 is the
/// product type by convention (used by the existing-tree baseline).
struct DomainSchema {
  std::string name;
  std::vector<AttributeSchema> attributes;
};

/// The Fashion domain of datasets A, B, C (types, brands, colors, sleeve
/// lengths, genders, materials).
DomainSchema FashionSchema();

/// The Electronics domain of datasets D and E (device types, brands,
/// capacities, screen sizes, colors, conditions).
DomainSchema ElectronicsSchema();

/// An immutable generated catalog: every item has one value per attribute.
class Catalog {
 public:
  /// Generates `num_items` items with Zipf-sampled attribute values.
  /// Deterministic in `seed`.
  static Catalog Generate(DomainSchema schema, size_t num_items,
                          uint64_t seed);

  size_t num_items() const { return num_items_; }
  const DomainSchema& schema() const { return schema_; }
  size_t num_attributes() const { return schema_.attributes.size(); }

  /// Value index of `item` for attribute `attr`.
  uint16_t value(ItemId item, size_t attr) const {
    return values_[static_cast<size_t>(item) * schema_.attributes.size() +
                   attr];
  }

  /// Human-readable value, e.g. "nike".
  const std::string& ValueName(size_t attr, uint16_t value) const {
    return schema_.attributes[attr].values[value];
  }

  /// Product title, e.g. "nike black long-sleeve shirt" (brand color ...
  /// type order). Used by the IC-S baseline and the tf-idf cohesiveness
  /// metric.
  std::string Title(ItemId item) const;

  /// Items whose attribute `attr` equals `value`.
  ItemSet ItemsWithValue(size_t attr, uint16_t value) const;

  /// Dense semantic embedding of an item: concatenated one-hot blocks per
  /// attribute plus small deterministic noise — the stand-in for the
  /// domain-tuned title-embedding model of the IC-S baseline.
  std::vector<float> SemanticEmbedding(ItemId item) const;

 private:
  Catalog(DomainSchema schema, size_t num_items)
      : schema_(std::move(schema)), num_items_(num_items) {}

  DomainSchema schema_;
  size_t num_items_;
  std::vector<uint16_t> values_;  // num_items x num_attributes, row-major.
};

}  // namespace data
}  // namespace oct

#endif  // OCT_DATA_CATALOG_H_
