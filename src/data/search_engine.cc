#include "data/search_engine.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace oct {
namespace data {

namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

/// Deterministic uniform double in [0,1) from a hash.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string Query::Text(const Catalog& catalog) const {
  if (phrasing > 0) {
    // Paraphrases render with the conjuncts in rotated order.
    std::string rotated;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      const auto& [attr, value] =
          conjuncts[(i + phrasing) % conjuncts.size()];
      if (!rotated.empty()) rotated += " ";
      rotated += catalog.ValueName(attr, value);
    }
    return rotated;
  }
  // Non-type conjuncts first, type last: "black nike shirt".
  std::string text;
  std::string type_part;
  for (const auto& [attr, value] : conjuncts) {
    const std::string& name = catalog.ValueName(attr, value);
    if (attr == 0) {
      type_part = name;
    } else {
      if (!text.empty()) text += " ";
      text += name;
    }
  }
  if (!type_part.empty()) {
    if (!text.empty()) text += " ";
    text += type_part;
  }
  return text;
}

uint64_t Query::Key() const { return Mix(BaseKey(), phrasing); }

uint64_t Query::BaseKey() const {
  uint64_t key = 0x8BADF00Du;
  for (const auto& [attr, value] : conjuncts) {
    key = Mix(key, (static_cast<uint64_t>(attr) << 32) | value);
  }
  return key;
}

SearchEngine::SearchEngine(const Catalog* catalog, SearchOptions options)
    : catalog_(catalog), options_(options) {
  const size_t num_attrs = catalog->num_attributes();
  postings_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    postings_[a].resize(catalog->schema().attributes[a].values.size());
  }
  for (ItemId item = 0; item < catalog->num_items(); ++item) {
    for (size_t a = 0; a < num_attrs; ++a) {
      postings_[a][catalog->value(item, a)].push_back(item);
    }
  }
}

Status SearchEngine::ValidateQuery(const Query& query) const {
  if (query.conjuncts.empty()) {
    return Status::InvalidArgument("query has no conjuncts");
  }
  for (const auto& [attr, value] : query.conjuncts) {
    if (attr >= postings_.size()) {
      return Status::InvalidArgument(
          "query attribute " + std::to_string(attr) +
          " out of range (catalog has " + std::to_string(postings_.size()) +
          " attributes)");
    }
    if (value >= postings_[attr].size()) {
      return Status::InvalidArgument(
          "query value " + std::to_string(value) + " out of range for "
          "attribute " + std::to_string(attr) + " (has " +
          std::to_string(postings_[attr].size()) + " values)");
    }
  }
  return Status::OK();
}

std::vector<SearchEngine::Hit> SearchEngine::Search(const Query& query) const {
  const Status valid = ValidateQuery(query);
  OCT_CHECK(valid.ok()) << valid.ToString();
  const uint64_t qkey = Mix(options_.seed, query.Key());
  const uint64_t base_key = Mix(options_.seed, query.BaseKey());

  // Full matches: intersect postings, smallest list first.
  std::vector<const std::vector<ItemId>*> lists;
  for (const auto& [attr, value] : query.conjuncts) {
    lists.push_back(&postings_[attr][value]);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<ItemId> full = *lists[0];
  for (size_t i = 1; i < lists.size(); ++i) {
    std::vector<ItemId> next;
    next.reserve(full.size());
    std::set_intersection(full.begin(), full.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    full = std::move(next);
  }

  std::vector<Hit> hits;
  hits.reserve(full.size());
  auto relevance_of = [&](ItemId item, double base) {
    // The bulk of the noise is shared across paraphrases of one intent;
    // phrasing only perturbs mildly (different tokenization).
    const double u = HashToUnit(Mix(base_key, item)) * 2.0 - 1.0;  // [-1, 1)
    const double p = HashToUnit(Mix(qkey, item)) * 2.0 - 1.0;
    double r = base + u * options_.noise + p * 0.004;
    return std::clamp(r, 0.0, 1.0);
  };
  for (ItemId item : full) {
    hits.push_back({item, relevance_of(item, options_.full_match_relevance)});
  }

  // Near-misses: items matching all conjuncts but one (multi-conjunct
  // queries only) — the low-relevance tail the preprocessing trims.
  if (query.conjuncts.size() >= 2) {
    std::vector<char> is_full(0);
    for (size_t skip = 0; skip < query.conjuncts.size(); ++skip) {
      std::vector<ItemId> partial;
      bool first = true;
      for (size_t i = 0; i < query.conjuncts.size(); ++i) {
        if (i == skip) continue;
        const auto& [attr, value] = query.conjuncts[i];
        const auto& list = postings_[attr][value];
        if (first) {
          partial = list;
          first = false;
        } else {
          std::vector<ItemId> next;
          next.reserve(partial.size());
          std::set_intersection(partial.begin(), partial.end(), list.begin(),
                                list.end(), std::back_inserter(next));
          partial = std::move(next);
        }
      }
      const auto& [sattr, svalue] = query.conjuncts[skip];
      for (ItemId item : partial) {
        if (catalog_->value(item, sattr) == svalue) continue;  // Full match.
        hits.push_back(
            {item, relevance_of(item, options_.partial_match_relevance)});
      }
    }
  }

  // Mislabeled injections: a few unrelated items scored high enough to
  // survive thresholding (deterministic per query *intent* — the engine
  // misclassifies the product, not the phrasing).
  {
    Rng rng(Mix(base_key, 0xBADCAB1Eu));
    const double expected = options_.mislabel_per_query;
    size_t count = static_cast<size_t>(expected);
    if (rng.NextDouble() < expected - static_cast<double>(count)) ++count;
    for (size_t i = 0; i < count && catalog_->num_items() > 0; ++i) {
      const ItemId item =
          static_cast<ItemId>(rng.NextBelow(catalog_->num_items()));
      hits.push_back({item, 0.82 + 0.15 * rng.NextDouble()});
    }
  }

  // Dedup by item (keep max relevance), sort by relevance desc, truncate.
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.item != b.item) return a.item < b.item;
    return a.relevance > b.relevance;
  });
  hits.erase(std::unique(hits.begin(), hits.end(),
                         [](const Hit& a, const Hit& b) {
                           return a.item == b.item;
                         }),
             hits.end());
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.relevance != b.relevance) return a.relevance > b.relevance;
    return a.item < b.item;
  });
  if (hits.size() > options_.top_k) hits.resize(options_.top_k);
  return hits;
}

Result<std::vector<SearchEngine::Hit>> SearchEngine::TrySearch(
    const Query& query) const {
  OCT_RETURN_NOT_OK(ValidateQuery(query));
  return Search(query);
}

ItemSet SearchEngine::ResultSet(const Query& query,
                                double relevance_threshold) const {
  const std::vector<Hit> hits = Search(query);
  std::vector<ItemId> items;
  items.reserve(hits.size());
  for (const Hit& h : hits) {
    if (h.relevance >= relevance_threshold) items.push_back(h.item);
  }
  return ItemSet(std::move(items));
}

Result<ItemSet> SearchEngine::TryResultSet(const Query& query,
                                           double relevance_threshold) const {
  OCT_RETURN_NOT_OK(ValidateQuery(query));
  return ResultSet(query, relevance_threshold);
}

}  // namespace data
}  // namespace oct
