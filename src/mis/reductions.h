// Weighted-MIS kernelization: exactness-preserving reductions applied before
// branch-and-bound. Conflict graphs derived from real inputs are sparse
// (Section 3 of the paper), so these reductions typically shrink instances
// dramatically, mirroring the behaviour of practical branch-and-reduce
// solvers.

#ifndef OCT_MIS_REDUCTIONS_H_
#define OCT_MIS_REDUCTIONS_H_

#include <vector>

#include "mis/graph.h"

namespace oct {
namespace mis {

/// Result of kernelization.
struct ReductionResult {
  /// Vertices proven to be in some optimal solution.
  std::vector<VertexId> forced;
  double forced_weight = 0.0;
  /// Remaining vertices (original ids) forming the kernel.
  std::vector<VertexId> kernel;
};

/// Applies, to a fixed point, the *neighborhood removal* reduction: any
/// vertex v with w(v) >= sum of the weights of its alive neighbors belongs
/// to some optimal solution; take it and delete N[v]. This subsumes the
/// isolated-vertex and heavy-pendant reductions. Exactness-preserving.
ReductionResult ReduceNeighborhoodRemoval(const Graph& graph);

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_REDUCTIONS_H_
