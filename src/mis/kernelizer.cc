#include "mis/kernelizer.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace oct {
namespace mis {

namespace {
/// Degree cap for attempting the (quadratic-ish) domination check.
constexpr size_t kDominationDegreeCap = 32;
}  // namespace

Kernelizer::Kernelizer(const Graph& graph) : original_(&graph) {
  const size_t n = graph.num_vertices();
  std::vector<char> alive(n, 1);
  std::vector<double> weight(n);
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    weight[v] = graph.weight(v);
    adj[v] = graph.Neighbors(v);  // Sorted by Graph::Finalize.
  }

  auto erase_from = [&](std::vector<VertexId>* list, VertexId v) {
    auto it = std::lower_bound(list->begin(), list->end(), v);
    if (it != list->end() && *it == v) list->erase(it);
  };

  std::queue<VertexId> work;
  std::vector<char> queued(n, 0);
  auto enqueue = [&](VertexId v) {
    if (alive[v] && !queued[v]) {
      work.push(v);
      queued[v] = 1;
    }
  };
  auto remove_vertex = [&](VertexId v) {
    alive[v] = 0;
    for (VertexId u : adj[v]) {
      if (!alive[u]) continue;
      erase_from(&adj[u], v);
      enqueue(u);
    }
    adj[v].clear();
  };

  for (VertexId v = 0; v < n; ++v) enqueue(v);

  while (!work.empty()) {
    const VertexId v = work.front();
    work.pop();
    queued[v] = 0;
    if (!alive[v]) continue;

    // Neighborhood removal (subsumes isolated vertices and heavy pendants).
    double nbr_weight = 0.0;
    for (VertexId u : adj[v]) nbr_weight += weight[u];
    if (weight[v] >= nbr_weight - 1e-12) {
      actions_.push_back({Action::Kind::kTake, v, 0});
      offset_ += weight[v];
      ++taken_count_;
      const std::vector<VertexId> nbrs = adj[v];
      remove_vertex(v);
      for (VertexId u : nbrs) {
        if (alive[u]) remove_vertex(u);
      }
      continue;
    }

    // Degree-1 fold: w(v) < w(u) here (heavier pendants were taken above).
    if (adj[v].size() == 1) {
      const VertexId u = adj[v][0];
      actions_.push_back({Action::Kind::kFold, v, u});
      offset_ += weight[v];
      weight[u] -= weight[v];
      ++fold_count_;
      remove_vertex(v);
      enqueue(u);
      continue;
    }

    // Domination: an adjacent u with N[u] ⊆ N[v] and w(u) >= w(v) makes v
    // removable.
    if (adj[v].size() <= kDominationDegreeCap) {
      bool dominated = false;
      for (VertexId u : adj[v]) {
        if (weight[u] < weight[v] - 1e-12) continue;
        if (adj[u].size() > adj[v].size()) continue;
        // N[u] ⊆ N[v]  <=>  every neighbor of u (except v) neighbors v.
        bool subset = true;
        for (VertexId w : adj[u]) {
          if (w == v) continue;
          if (!std::binary_search(adj[v].begin(), adj[v].end(), w)) {
            subset = false;
            break;
          }
        }
        if (subset) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        actions_.push_back({Action::Kind::kDominated, v, 0});
        ++dominated_count_;
        remove_vertex(v);
        continue;
      }
    }
  }

  // Build the kernel graph over surviving vertices with updated weights.
  std::vector<VertexId> local(n, UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) {
      local[v] = static_cast<VertexId>(origin_of_.size());
      origin_of_.push_back(v);
    }
  }
  kernel_ = Graph(origin_of_.size());
  for (size_t i = 0; i < origin_of_.size(); ++i) {
    const VertexId v = origin_of_[i];
    kernel_.set_weight(static_cast<VertexId>(i), weight[v]);
    for (VertexId u : adj[v]) {
      if (u > v && local[u] != UINT32_MAX) {
        kernel_.AddEdge(static_cast<VertexId>(i), local[u]);
      }
    }
  }
  kernel_.Finalize();
}

MisSolution Kernelizer::Decode(const MisSolution& kernel_solution) const {
  std::vector<char> in_set(original_->num_vertices(), 0);
  for (VertexId k : kernel_solution.vertices) {
    OCT_DCHECK_LT(k, origin_of_.size());
    in_set[origin_of_[k]] = 1;
  }
  // Replay reductions backwards.
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    switch (it->kind) {
      case Action::Kind::kTake:
        in_set[it->v] = 1;
        break;
      case Action::Kind::kFold:
        // If the fold partner made it into the solution it already pays the
        // reduced weight and the offset tops it up; otherwise v is free to
        // join (all its other neighbors were just u).
        if (!in_set[it->u]) in_set[it->v] = 1;
        break;
      case Action::Kind::kDominated:
        break;
    }
  }
  MisSolution out;
  for (VertexId v = 0; v < original_->num_vertices(); ++v) {
    if (in_set[v]) {
      out.vertices.push_back(v);
      out.weight += original_->weight(v);
    }
  }
  out.optimal = kernel_solution.optimal;
  OCT_DCHECK(original_->IsIndependentSet(out.vertices));
  return out;
}

}  // namespace mis
}  // namespace oct
