#include "mis/exact_solver.h"

#include <algorithm>
#include <numeric>

#include "mis/greedy.h"
#include "mis/local_search.h"
#include "util/logging.h"

namespace oct {
namespace mis {

namespace {

/// Branch-and-reduce over one connected component.
///
/// Per-node work is kept near O(degree): the cheap upper bound is the
/// maintained alive-weight sum, refined by a greedy clique-cover bound only
/// on small residual graphs (where it is both cheap and tight).
class ComponentSolver {
 public:
  ComponentSolver(const Graph& graph, size_t max_nodes,
                  const fault::CancelToken* cancel)
      : graph_(graph), max_nodes_(max_nodes), cancel_(cancel) {
    const size_t n = graph.num_vertices();
    alive_.assign(n, 1);
    nbr_weight_.assign(n, 0.0);
    degree_.assign(n, 0);
    alive_weight_ = 0.0;
    alive_count_ = n;
    for (VertexId v = 0; v < n; ++v) {
      degree_[v] = graph.Degree(v);
      alive_weight_ += graph.weight(v);
      for (VertexId u : graph.Neighbors(v)) {
        nbr_weight_[v] += graph.weight(u);
      }
    }
    // Incumbent: greedy + local search.
    LocalSearchOptions ls;
    ls.rounds = 10;
    best_ = LocalSearchImprove(graph, SolveGreedy(graph), ls);
  }

  MisSolution Solve() {
    current_.clear();
    current_weight_ = 0.0;
    nodes_ = 0;
    const bool complete = Branch();
    MisSolution sol = best_;
    sol.optimal = complete;
    std::sort(sol.vertices.begin(), sol.vertices.end());
    return sol;
  }

 private:
  struct Undo {
    std::vector<VertexId> removed;
    size_t chosen_before = 0;
    double chosen_weight_before = 0.0;
  };

  void RemoveVertex(VertexId v, Undo* undo) {
    OCT_DCHECK(alive_[v]);
    alive_[v] = 0;
    alive_weight_ -= graph_.weight(v);
    --alive_count_;
    undo->removed.push_back(v);
    for (VertexId u : graph_.Neighbors(v)) {
      if (!alive_[u]) continue;
      nbr_weight_[u] -= graph_.weight(v);
      --degree_[u];
    }
  }

  void TakeVertex(VertexId v, Undo* undo) {
    current_.push_back(v);
    current_weight_ += graph_.weight(v);
    scratch_nbrs_.clear();
    for (VertexId u : graph_.Neighbors(v)) {
      if (alive_[u]) scratch_nbrs_.push_back(u);
    }
    // Copy: RemoveVertex below mutates alive_ flags.
    const std::vector<VertexId> nbrs = scratch_nbrs_;
    RemoveVertex(v, undo);
    for (VertexId u : nbrs) {
      if (alive_[u]) RemoveVertex(u, undo);
    }
  }

  void Rollback(const Undo& undo) {
    for (auto it = undo.removed.rbegin(); it != undo.removed.rend(); ++it) {
      const VertexId v = *it;
      alive_[v] = 1;
      alive_weight_ += graph_.weight(v);
      ++alive_count_;
      for (VertexId u : graph_.Neighbors(v)) {
        if (!alive_[u]) continue;
        nbr_weight_[u] += graph_.weight(v);
        ++degree_[u];
      }
    }
    current_.resize(undo.chosen_before);
    current_weight_ = undo.chosen_weight_before;
  }

  /// Neighborhood-removal reduction to a fixed point, via a worklist.
  void Reduce(Undo* undo) {
    std::vector<VertexId> work;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (alive_[v]) work.push_back(v);
    }
    while (!work.empty()) {
      const VertexId v = work.back();
      work.pop_back();
      if (!alive_[v]) continue;
      if (graph_.weight(v) >= nbr_weight_[v] - 1e-12) {
        // Neighbors of removed vertices become candidates again.
        const size_t before = undo->removed.size();
        TakeVertex(v, undo);
        for (size_t i = before; i < undo->removed.size(); ++i) {
          for (VertexId u : graph_.Neighbors(undo->removed[i])) {
            if (alive_[u]) work.push_back(u);
          }
        }
      }
    }
  }

  /// Greedy weighted clique-cover bound over alive vertices (only invoked
  /// on small residual graphs).
  double CliqueCoverBound() const {
    std::vector<VertexId> verts;
    verts.reserve(alive_count_);
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (alive_[v]) verts.push_back(v);
    }
    std::sort(verts.begin(), verts.end(), [&](VertexId a, VertexId b) {
      return graph_.weight(a) > graph_.weight(b);
    });
    std::vector<std::vector<VertexId>> cliques;
    double bound = 0.0;
    for (VertexId v : verts) {
      bool placed = false;
      for (auto& clique : cliques) {
        bool adjacent_to_all = true;
        for (VertexId u : clique) {
          if (!graph_.HasEdge(v, u)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (adjacent_to_all) {
          clique.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) {
        cliques.push_back({v});
        bound += graph_.weight(v);  // v is the heaviest in its new clique.
      }
    }
    return bound;
  }

  /// Returns true when the subtree was searched completely.
  bool Branch() {
    if (++nodes_ > max_nodes_) return false;
    // Deadline poll every 1024 nodes: one clock read amortized over enough
    // branching work to be invisible in profiles.
    if ((nodes_ & 1023u) == 0 && fault::Cancelled(cancel_)) return false;
    Undo undo;
    undo.chosen_before = current_.size();
    undo.chosen_weight_before = current_weight_;
    Reduce(&undo);

    if (alive_count_ == 0) {
      if (current_weight_ > best_.weight + 1e-12) {
        best_.vertices = current_;
        best_.weight = current_weight_;
      }
      Rollback(undo);
      return true;
    }

    bool complete = true;
    // Cheap bound first; refine with the clique cover only when small.
    double bound = alive_weight_;
    if (current_weight_ + bound > best_.weight + 1e-12 &&
        alive_count_ <= 96) {
      bound = CliqueCoverBound();
    }
    if (current_weight_ + bound > best_.weight + 1e-12) {
      // Branching vertex: max degree (ties: max weight).
      VertexId pivot = UINT32_MAX;
      size_t best_deg = 0;
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        if (!alive_[v]) continue;
        if (pivot == UINT32_MAX || degree_[v] > best_deg ||
            (degree_[v] == best_deg &&
             graph_.weight(v) > graph_.weight(pivot))) {
          pivot = v;
          best_deg = degree_[v];
        }
      }
      // Branch 1: take pivot.
      {
        Undo u1;
        u1.chosen_before = current_.size();
        u1.chosen_weight_before = current_weight_;
        TakeVertex(pivot, &u1);
        complete = Branch() && complete;
        Rollback(u1);
      }
      // Branch 2: exclude pivot.
      {
        Undo u2;
        u2.chosen_before = current_.size();
        u2.chosen_weight_before = current_weight_;
        RemoveVertex(pivot, &u2);
        complete = Branch() && complete;
        Rollback(u2);
      }
    }
    Rollback(undo);
    return complete;
  }

  const Graph& graph_;
  const size_t max_nodes_;
  const fault::CancelToken* const cancel_;
  std::vector<char> alive_;
  std::vector<double> nbr_weight_;
  std::vector<size_t> degree_;
  double alive_weight_ = 0.0;
  size_t alive_count_ = 0;

  std::vector<VertexId> current_;
  std::vector<VertexId> scratch_nbrs_;
  double current_weight_ = 0.0;
  size_t nodes_ = 0;
  MisSolution best_;
};

}  // namespace

MisSolution SolveExact(const Graph& graph, const ExactOptions& options) {
  MisSolution total;
  total.optimal = true;
  const auto components = graph.ConnectedComponents();
  const size_t total_vertices = graph.num_vertices();
  if (total_vertices == 0) return total;
  for (const auto& comp : components) {
    if (comp.size() == 1) {
      total.vertices.push_back(comp[0]);
      total.weight += graph.weight(comp[0]);
      continue;
    }
    std::vector<VertexId> origin;
    const Graph sub = graph.InducedSubgraph(comp, &origin);
    MisSolution comp_sol;
    if (fault::Cancelled(options.cancel)) {
      // Budget exhausted: remaining components get the greedy IS only —
      // still valid, just not tightened.
      comp_sol = SolveGreedy(sub);
      comp_sol.optimal = false;
    } else if (comp.size() > options.max_component_vertices) {
      // Too large for complete search: greedy + local search.
      LocalSearchOptions ls;
      ls.cancel = options.cancel;
      comp_sol = LocalSearchImprove(sub, SolveGreedy(sub), ls);
      comp_sol.optimal = false;
    } else {
      const size_t budget = std::max<size_t>(
          10'000, options.max_nodes * comp.size() / total_vertices);
      ComponentSolver solver(sub, budget, options.cancel);
      comp_sol = solver.Solve();
    }
    total.optimal = total.optimal && comp_sol.optimal;
    total.weight += comp_sol.weight;
    for (VertexId v : comp_sol.vertices) {
      total.vertices.push_back(origin[v]);
    }
  }
  std::sort(total.vertices.begin(), total.vertices.end());
  OCT_DCHECK(graph.IsIndependentSet(total.vertices));
  return total;
}

}  // namespace mis
}  // namespace oct
