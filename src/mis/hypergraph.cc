#include "mis/hypergraph.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace oct {
namespace mis {

Hypergraph::Hypergraph(size_t num_vertices)
    : weights_(num_vertices, 1.0), incident_(num_vertices) {}

void Hypergraph::AddEdge2(VertexId a, VertexId b) {
  OCT_CHECK_NE(a, b);
  HyperEdge e;
  e.v = {std::min(a, b), std::max(a, b), HyperEdge::kNoVertex};
  edges_.push_back(e);
  finalized_ = false;
}

void Hypergraph::AddEdge3(VertexId a, VertexId b, VertexId c) {
  OCT_CHECK(a != b && b != c && a != c);
  std::array<VertexId, 3> v = {a, b, c};
  std::sort(v.begin(), v.end());
  HyperEdge e;
  e.v = v;
  edges_.push_back(e);
  finalized_ = false;
}

void Hypergraph::Finalize() {
  std::sort(edges_.begin(), edges_.end(),
            [](const HyperEdge& a, const HyperEdge& b) { return a.v < b.v; });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const HyperEdge& a, const HyperEdge& b) {
                             return a.v == b.v;
                           }),
               edges_.end());
  // Drop 3-edges subsumed by a 2-edge: an IS avoiding the pair trivially
  // avoids the triple.
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const auto& e : edges_) {
    if (e.size() == 2) pairs.insert({e.v[0], e.v[1]});
  }
  edges_.erase(
      std::remove_if(edges_.begin(), edges_.end(),
                     [&](const HyperEdge& e) {
                       if (e.size() != 3) return false;
                       return pairs.count({e.v[0], e.v[1]}) > 0 ||
                              pairs.count({e.v[0], e.v[2]}) > 0 ||
                              pairs.count({e.v[1], e.v[2]}) > 0;
                     }),
      edges_.end());
  for (auto& inc : incident_) inc.clear();
  for (uint32_t id = 0; id < edges_.size(); ++id) {
    const auto& e = edges_[id];
    for (size_t i = 0; i < e.size(); ++i) incident_[e.v[i]].push_back(id);
  }
  finalized_ = true;
}

double Hypergraph::WeightOf(const std::vector<VertexId>& vertices) const {
  double w = 0.0;
  for (VertexId v : vertices) w += weights_[v];
  return w;
}

bool Hypergraph::IsIndependentSet(
    const std::vector<VertexId>& vertices) const {
  std::vector<char> in(weights_.size(), 0);
  for (VertexId v : vertices) {
    if (in[v]) return false;
    in[v] = 1;
  }
  for (const auto& e : edges_) {
    bool all = true;
    for (size_t i = 0; i < e.size(); ++i) {
      if (!in[e.v[i]]) {
        all = false;
        break;
      }
    }
    if (all) return false;
  }
  return true;
}

}  // namespace mis
}  // namespace oct
