#include "mis/hypergraph_solver.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace oct {
namespace mis {

namespace {

/// True when adding v to the selection would fully select some edge.
bool WouldCompleteEdge(const Hypergraph& hg, const std::vector<char>& in,
                       VertexId v) {
  for (uint32_t e_id : hg.IncidentEdges(v)) {
    const HyperEdge& e = hg.edges()[e_id];
    bool others_in = true;
    for (size_t i = 0; i < e.size(); ++i) {
      if (e.v[i] != v && !in[e.v[i]]) {
        others_in = false;
        break;
      }
    }
    if (others_in) return true;
  }
  return false;
}

MisSolution ToSolution(const Hypergraph& hg, const std::vector<char>& in) {
  MisSolution sol;
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    if (in[v]) {
      sol.vertices.push_back(v);
      sol.weight += hg.weight(v);
    }
  }
  return sol;
}

/// Greedy by descending w(v) / (degree(v) + 1).
std::vector<char> GreedySelect(const Hypergraph& hg) {
  const size_t n = hg.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const double ka = hg.weight(a) / static_cast<double>(hg.Degree(a) + 1);
    const double kb = hg.weight(b) / static_cast<double>(hg.Degree(b) + 1);
    if (ka != kb) return ka > kb;
    return a < b;
  });
  std::vector<char> in(n, 0);
  for (VertexId v : order) {
    if (!WouldCompleteEdge(hg, in, v)) in[v] = 1;
  }
  return in;
}

/// One swap pass: insert any excluded vertex whose weight exceeds the total
/// weight of the minimum eviction set unblocking it. Returns improvement.
bool SwapPass(const Hypergraph& hg, std::vector<char>* in) {
  bool improved = false;
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    if ((*in)[v]) continue;
    // Edges that v's insertion would complete; evict the lightest selected
    // member of each.
    std::vector<VertexId> blockers;
    for (uint32_t e_id : hg.IncidentEdges(v)) {
      const HyperEdge& e = hg.edges()[e_id];
      bool others_in = true;
      VertexId lightest = HyperEdge::kNoVertex;
      for (size_t i = 0; i < e.size(); ++i) {
        const VertexId u = e.v[i];
        if (u == v) continue;
        if (!(*in)[u]) {
          others_in = false;
          break;
        }
        if (lightest == HyperEdge::kNoVertex ||
            hg.weight(u) < hg.weight(lightest)) {
          lightest = u;
        }
      }
      if (others_in && lightest != HyperEdge::kNoVertex) {
        blockers.push_back(lightest);
      }
    }
    std::sort(blockers.begin(), blockers.end());
    blockers.erase(std::unique(blockers.begin(), blockers.end()),
                   blockers.end());
    double evict_weight = 0.0;
    for (VertexId u : blockers) evict_weight += hg.weight(u);
    if (hg.weight(v) > evict_weight + 1e-12) {
      for (VertexId u : blockers) (*in)[u] = 0;
      (*in)[v] = 1;
      improved = true;
    }
  }
  return improved;
}

/// Exact branch-and-bound for small instances.
class ExactHg {
 public:
  ExactHg(const Hypergraph& hg, size_t max_nodes,
          const fault::CancelToken* cancel)
      : hg_(hg), max_nodes_(max_nodes), cancel_(cancel) {
    const size_t n = hg.num_vertices();
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    // Heaviest first improves early incumbents.
    std::sort(order_.begin(), order_.end(), [&](VertexId a, VertexId b) {
      return hg.weight(a) > hg.weight(b);
    });
    suffix_weight_.assign(n + 1, 0.0);
    for (size_t i = n; i-- > 0;) {
      suffix_weight_[i] = suffix_weight_[i + 1] + hg.weight(order_[i]);
    }
    in_.assign(n, 0);
    best_ = ToSolution(hg, GreedySelect(hg));
  }

  MisSolution Solve() {
    complete_ = true;
    Recurse(0, 0.0);
    best_.optimal = complete_;
    return best_;
  }

 private:
  void Recurse(size_t idx, double weight) {
    if (++nodes_ > max_nodes_) {
      complete_ = false;
      return;
    }
    if ((nodes_ & 1023u) == 0 && fault::Cancelled(cancel_)) {
      complete_ = false;
      return;
    }
    if (idx == order_.size()) {
      if (weight > best_.weight + 1e-12) {
        best_ = ToSolution(hg_, in_);
      }
      return;
    }
    if (weight + suffix_weight_[idx] <= best_.weight + 1e-12) return;
    const VertexId v = order_[idx];
    if (!WouldCompleteEdge(hg_, in_, v)) {
      in_[v] = 1;
      Recurse(idx + 1, weight + hg_.weight(v));
      in_[v] = 0;
    }
    Recurse(idx + 1, weight);
  }

  const Hypergraph& hg_;
  const size_t max_nodes_;
  const fault::CancelToken* const cancel_;
  std::vector<VertexId> order_;
  std::vector<double> suffix_weight_;
  std::vector<char> in_;
  MisSolution best_;
  size_t nodes_ = 0;
  bool complete_ = true;
};

}  // namespace

MisSolution SolveHypergraphMis(const Hypergraph& hypergraph,
                               const HypergraphSolverOptions& options) {
  OCT_SPAN("mis/solve_hypergraph");
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  static obs::Counter* hg_exact_solves =
      reg->GetCounter("mis.hg_exact_solves");
  static obs::Counter* hg_greedy_solves =
      reg->GetCounter("mis.hg_greedy_solves");
  static obs::Counter* hg_swap_rounds = reg->GetCounter("mis.hg_swap_rounds");
  const size_t n = hypergraph.num_vertices();
  if (n == 0) {
    MisSolution empty;
    empty.optimal = true;
    return empty;
  }
  // Count vertices actually touched by an edge; untouched ones are free.
  size_t touched = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (hypergraph.Degree(v) > 0) ++touched;
  }
  if (touched <= options.exact_vertex_limit) {
    hg_exact_solves->Increment();
    ExactHg exact(hypergraph, options.max_nodes, options.cancel);
    MisSolution sol = exact.Solve();
    OCT_DCHECK(hypergraph.IsIndependentSet(sol.vertices));
    return sol;
  }
  hg_greedy_solves->Increment();
  std::vector<char> in = GreedySelect(hypergraph);
  size_t rounds_run = 0;
  for (size_t round = 0; round < options.swap_rounds; ++round) {
    if (fault::Cancelled(options.cancel)) break;
    ++rounds_run;
    if (!SwapPass(hypergraph, &in)) break;
  }
  hg_swap_rounds->Increment(rounds_run);
  MisSolution sol = ToSolution(hypergraph, in);
  sol.optimal = hypergraph.num_edges() == 0;
  OCT_DCHECK(hypergraph.IsIndependentSet(sol.vertices));
  return sol;
}

}  // namespace mis
}  // namespace oct
