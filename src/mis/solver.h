// Solver facade: kernelize, solve the kernel exactly when affordable, fall
// back to greedy + local search otherwise. This is the "practical MIS
// solver" interface CTCR plugs into (Section 3).

#ifndef OCT_MIS_SOLVER_H_
#define OCT_MIS_SOLVER_H_

#include "fault/cancel.h"
#include "mis/exact_solver.h"
#include "mis/graph.h"

namespace oct {
namespace mis {

struct MisOptions {
  /// Branch-and-bound node budget (after kernelization).
  size_t max_nodes = 5'000'000;
  /// Skip the exact phase entirely when the kernel exceeds this many
  /// vertices; greedy + local search is used instead.
  size_t exact_kernel_limit = 20'000;
  uint64_t seed = 42;
  /// Deadline/cancellation (not owned; may be null). MIS is a natural
  /// anytime algorithm: on expiry the solver returns its best valid IS so
  /// far with optimal == false.
  const fault::CancelToken* cancel = nullptr;
};

/// Computes a heavy (often optimal) weighted independent set.
MisSolution SolveMis(const Graph& graph, const MisOptions& options = {});

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_SOLVER_H_
