// Exactness-preserving kernelization for weighted MIS, with solution
// decoding — the reduction repertoire of practical branch-and-reduce
// solvers (cf. Lamm et al.):
//
//  - isolated vertex            : take it;
//  - neighborhood removal       : w(v) >= w(N(v)) -> take v, delete N[v];
//  - heavy pendant              : deg(v) = 1, w(v) >= w(u) -> take v;
//  - degree-1 fold              : deg(v) = 1, w(v) < w(u) -> delete v,
//                                 w(u) -= w(v); afterwards u in the kernel
//                                 solution decodes to u, otherwise to v;
//                                 the objective gains a constant w(v);
//  - domination                 : u, v adjacent, N[u] ⊆ N[v], w(u) >= w(v)
//                                 -> delete v.
//
// MIS(G) = offset + MIS(kernel); Decode() lifts a kernel solution back to
// an original-graph independent set of weight offset + kernel weight.

#ifndef OCT_MIS_KERNELIZER_H_
#define OCT_MIS_KERNELIZER_H_

#include <vector>

#include "mis/graph.h"

namespace oct {
namespace mis {

class Kernelizer {
 public:
  /// Runs all reductions to a fixed point on `graph`.
  explicit Kernelizer(const Graph& graph);

  /// The reduced instance (weights may differ from the original's).
  const Graph& kernel() const { return kernel_; }
  /// Original vertex id of kernel vertex i.
  const std::vector<VertexId>& origin_of() const { return origin_of_; }
  /// Weight guaranteed regardless of how the kernel is solved.
  double offset() const { return offset_; }

  /// Lifts a kernel independent set (kernel vertex ids) to an original
  /// independent set; its weight equals offset() + kernel weight.
  MisSolution Decode(const MisSolution& kernel_solution) const;

  /// Diagnostics.
  size_t num_taken() const { return taken_count_; }
  size_t num_folded() const { return fold_count_; }
  size_t num_dominated() const { return dominated_count_; }

 private:
  struct Action {
    enum class Kind { kTake, kFold, kDominated } kind;
    VertexId v = 0;  // Vertex decided by this action.
    VertexId u = 0;  // Fold partner (kFold only).
  };

  const Graph* original_;
  Graph kernel_{0};
  std::vector<VertexId> origin_of_;
  std::vector<Action> actions_;
  double offset_ = 0.0;
  size_t taken_count_ = 0;
  size_t fold_count_ = 0;
  size_t dominated_count_ = 0;
};

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_KERNELIZER_H_
