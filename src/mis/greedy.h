// Greedy weighted-MIS construction: the classical w(v)/(deg(v)+1) ordering,
// which guarantees the weighted Turán bound and serves as the incumbent
// initializer for branch-and-bound and local search.

#ifndef OCT_MIS_GREEDY_H_
#define OCT_MIS_GREEDY_H_

#include "mis/graph.h"

namespace oct {
namespace mis {

/// Builds an independent set greedily by descending w(v)/(deg(v)+1).
MisSolution SolveGreedy(const Graph& graph);

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_GREEDY_H_
