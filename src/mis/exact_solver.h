// Exact weighted-MIS solver: branch-and-reduce with a weighted clique-cover
// upper bound, applied per connected component. This plays the role of the
// exact solver of Lamm et al. [22] referenced by the paper, which "solved
// all Exact OCT instances optimally and efficiently".

#ifndef OCT_MIS_EXACT_SOLVER_H_
#define OCT_MIS_EXACT_SOLVER_H_

#include "fault/cancel.h"
#include "mis/graph.h"

namespace oct {
namespace mis {

struct ExactOptions {
  /// Branch-and-bound node budget; when exhausted, the solver returns the
  /// best incumbent with optimal == false.
  size_t max_nodes = 400'000;
  /// Connected components larger than this are handed to greedy + local
  /// search instead of complete search (conflict graphs of real inputs
  /// kernelize far below this).
  size_t max_component_vertices = 600;
  /// Deadline/cancellation (not owned; may be null): the search stops at
  /// the next poll boundary and keeps the incumbent, optimal == false.
  const fault::CancelToken* cancel = nullptr;
};

/// Solves weighted MIS exactly (within the node budget). The returned
/// solution is always a valid independent set; `optimal` reports whether
/// optimality was proven.
MisSolution SolveExact(const Graph& graph, const ExactOptions& options = {});

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_EXACT_SOLVER_H_
