// Weighted local search for MIS, in the spirit of the iterated local search
// used by practical solvers: (1,k)-swaps (insert a vertex after evicting its
// lighter independent-set neighbors) plus random perturbation restarts.

#ifndef OCT_MIS_LOCAL_SEARCH_H_
#define OCT_MIS_LOCAL_SEARCH_H_

#include "fault/cancel.h"
#include "mis/graph.h"
#include "util/rng.h"

namespace oct {
namespace mis {

struct LocalSearchOptions {
  /// Number of perturbation rounds.
  size_t rounds = 20;
  /// Vertices force-inserted per perturbation.
  size_t perturbation = 2;
  uint64_t seed = 42;
  /// Deadline/cancellation (not owned; may be null): rounds stop early and
  /// the best IS found so far is returned.
  const fault::CancelToken* cancel = nullptr;
};

/// Improves `initial` (must be an IS) by repeated (1,k)-swap passes and
/// perturbations; returns the best IS found (never worse than `initial`).
MisSolution LocalSearchImprove(const Graph& graph, const MisSolution& initial,
                               const LocalSearchOptions& options = {});

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_LOCAL_SEARCH_H_
