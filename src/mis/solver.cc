#include "mis/solver.h"

#include <algorithm>

#include "mis/greedy.h"
#include "mis/kernelizer.h"
#include "mis/local_search.h"
#include "util/logging.h"

namespace oct {
namespace mis {

MisSolution SolveMis(const Graph& graph, const MisOptions& options) {
  // Phase 1: kernelize (neighborhood removal, degree-1 folds, domination).
  const Kernelizer kernelizer(graph);
  const Graph& kernel = kernelizer.kernel();

  // Phase 2: solve the kernel.
  MisSolution kernel_sol;
  kernel_sol.optimal = true;
  if (kernel.num_vertices() > 0) {
    if (kernel.num_vertices() <= options.exact_kernel_limit) {
      ExactOptions exact;
      exact.max_nodes = options.max_nodes;
      kernel_sol = SolveExact(kernel, exact);
    } else {
      kernel_sol.optimal = false;
    }
    if (!kernel_sol.optimal) {
      // Fall back to / improve with local search.
      LocalSearchOptions ls;
      ls.seed = options.seed;
      const MisSolution improved =
          LocalSearchImprove(kernel, SolveGreedy(kernel), ls);
      if (improved.weight > kernel_sol.weight) {
        const bool was_optimal = kernel_sol.optimal;
        kernel_sol = improved;
        kernel_sol.optimal = was_optimal;
      }
    }
  }

  // Phase 3: decode through the reduction stack.
  MisSolution result = kernelizer.Decode(kernel_sol);
  OCT_DCHECK(graph.IsIndependentSet(result.vertices));
  return result;
}

}  // namespace mis
}  // namespace oct
