#include "mis/solver.h"

#include <algorithm>
#include <memory>

#include "fault/failpoint.h"
#include "mis/greedy.h"
#include "mis/kernelizer.h"
#include "mis/local_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace mis {

MisSolution SolveMis(const Graph& graph, const MisOptions& options) {
  OCT_SPAN("mis/solve");
  // Chaos hook: a kDelay spec here simulates a slow solve under load; an
  // injected error is irrelevant to the value-returning API and ignored.
  (void)OCT_FAILPOINT("mis.solve");
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  static obs::Counter* kernel_taken = reg->GetCounter("mis.kernel_taken");
  static obs::Counter* kernel_folded = reg->GetCounter("mis.kernel_folded");
  static obs::Counter* kernel_dominated =
      reg->GetCounter("mis.kernel_dominated");
  static obs::Counter* exact_solves = reg->GetCounter("mis.exact_solves");
  static obs::Counter* ls_improves =
      reg->GetCounter("mis.local_search_improves");

  // Phase 1: kernelize (neighborhood removal, degree-1 folds, domination).
  std::unique_ptr<Kernelizer> kernelizer_holder;
  {
    OCT_SPAN("mis/kernelize");
    kernelizer_holder = std::make_unique<Kernelizer>(graph);
  }
  const Kernelizer& kernelizer = *kernelizer_holder;
  const Graph& kernel = kernelizer.kernel();
  kernel_taken->Increment(kernelizer.num_taken());
  kernel_folded->Increment(kernelizer.num_folded());
  kernel_dominated->Increment(kernelizer.num_dominated());

  // Phase 2: solve the kernel.
  MisSolution kernel_sol;
  kernel_sol.optimal = true;
  if (kernel.num_vertices() > 0) {
    OCT_SPAN("mis/solve_kernel");
    if (kernel.num_vertices() <= options.exact_kernel_limit) {
      ExactOptions exact;
      exact.max_nodes = options.max_nodes;
      exact.cancel = options.cancel;
      kernel_sol = SolveExact(kernel, exact);
      exact_solves->Increment();
    } else {
      kernel_sol.optimal = false;
    }
    if (!kernel_sol.optimal) {
      // Fall back to / improve with local search.
      LocalSearchOptions ls;
      ls.seed = options.seed;
      ls.cancel = options.cancel;
      const MisSolution improved =
          LocalSearchImprove(kernel, SolveGreedy(kernel), ls);
      if (improved.weight > kernel_sol.weight) {
        const bool was_optimal = kernel_sol.optimal;
        kernel_sol = improved;
        kernel_sol.optimal = was_optimal;
        ls_improves->Increment();
      }
    }
  }

  // Phase 3: decode through the reduction stack.
  MisSolution result = kernelizer.Decode(kernel_sol);
  OCT_DCHECK(graph.IsIndependentSet(result.vertices));
  return result;
}

}  // namespace mis
}  // namespace oct
