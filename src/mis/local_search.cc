#include "mis/local_search.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace oct {
namespace mis {

namespace {

/// One full (1,k)-swap pass: for every vertex v outside the IS, insert it
/// whenever its weight exceeds the total weight of its IS neighbors (which
/// get evicted). Returns whether any improvement was made.
bool SwapPass(const Graph& graph, std::vector<char>* in_set, double* weight) {
  bool improved = false;
  const size_t n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if ((*in_set)[v]) continue;
    double conflict_weight = 0.0;
    for (VertexId u : graph.Neighbors(v)) {
      if ((*in_set)[u]) conflict_weight += graph.weight(u);
    }
    if (graph.weight(v) > conflict_weight + 1e-12) {
      for (VertexId u : graph.Neighbors(v)) {
        if ((*in_set)[u]) {
          (*in_set)[u] = 0;
          *weight -= graph.weight(u);
        }
      }
      (*in_set)[v] = 1;
      *weight += graph.weight(v);
      improved = true;
    }
  }
  return improved;
}

MisSolution ToSolution(const Graph& graph, const std::vector<char>& in_set) {
  MisSolution sol;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (in_set[v]) {
      sol.vertices.push_back(v);
      sol.weight += graph.weight(v);
    }
  }
  return sol;
}

}  // namespace

MisSolution LocalSearchImprove(const Graph& graph, const MisSolution& initial,
                               const LocalSearchOptions& options) {
  OCT_DCHECK(graph.IsIndependentSet(initial.vertices));
  OCT_SPAN("mis/local_search");
  const size_t n = graph.num_vertices();
  std::vector<char> in_set(n, 0);
  double weight = 0.0;
  for (VertexId v : initial.vertices) {
    in_set[v] = 1;
    weight += graph.weight(v);
  }
  // Metrics are tallied locally and flushed once: the swap loop is the
  // solver's hot path.
  uint64_t passes = 0;
  while (SwapPass(graph, &in_set, &weight)) {
    ++passes;
  }
  std::vector<char> best_set = in_set;
  double best_weight = weight;

  uint64_t rounds_run = 0;
  Rng rng(options.seed);
  for (size_t round = 0; round < options.rounds && n > 0; ++round) {
    if (fault::Cancelled(options.cancel)) break;
    ++rounds_run;
    // Perturb: force a few random vertices in, evicting their neighbors.
    for (size_t p = 0; p < options.perturbation; ++p) {
      const VertexId v = static_cast<VertexId>(rng.NextBelow(n));
      if (in_set[v]) continue;
      for (VertexId u : graph.Neighbors(v)) {
        if (in_set[u]) {
          in_set[u] = 0;
          weight -= graph.weight(u);
        }
      }
      in_set[v] = 1;
      weight += graph.weight(v);
    }
    while (SwapPass(graph, &in_set, &weight)) {
      ++passes;
    }
    if (weight > best_weight) {
      best_weight = weight;
      best_set = in_set;
    } else {
      in_set = best_set;
      weight = best_weight;
    }
  }
  static obs::Counter* pass_counter =
      obs::MetricsRegistry::Default()->GetCounter("mis.local_search_passes");
  static obs::Counter* round_counter =
      obs::MetricsRegistry::Default()->GetCounter("mis.local_search_rounds");
  pass_counter->Increment(passes);
  round_counter->Increment(rounds_run);
  MisSolution sol = ToSolution(graph, best_set);
  OCT_DCHECK(graph.IsIndependentSet(sol.vertices));
  return sol;
}

}  // namespace mis
}  // namespace oct
