// Weighted hypergraph with edges of size 2 and 3 — the conflict hypergraph
// of CTCR for threshold < 1 (Section 3.2): hyperedges are 2-conflicts and
// 3-conflicts; an independent set is a vertex set containing no hyperedge
// entirely.

#ifndef OCT_MIS_HYPERGRAPH_H_
#define OCT_MIS_HYPERGRAPH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mis/graph.h"

namespace oct {
namespace mis {

/// A hyperedge: 2 or 3 distinct vertices (sorted). For 2-edges, v[2] is
/// kNoVertex.
struct HyperEdge {
  static constexpr VertexId kNoVertex = UINT32_MAX;
  std::array<VertexId, 3> v{kNoVertex, kNoVertex, kNoVertex};

  size_t size() const { return v[2] == kNoVertex ? 2 : 3; }
};

/// A vertex-weighted hypergraph with 2- and 3-edges.
class Hypergraph {
 public:
  explicit Hypergraph(size_t num_vertices);

  size_t num_vertices() const { return weights_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<HyperEdge>& edges() const { return edges_; }

  void AddEdge2(VertexId a, VertexId b);
  void AddEdge3(VertexId a, VertexId b, VertexId c);

  /// Sorts edges and removes duplicates and 3-edges subsumed by 2-edges
  /// (a 3-edge containing both endpoints of a 2-edge is redundant).
  void Finalize();

  double weight(VertexId v) const { return weights_[v]; }
  void set_weight(VertexId v, double w) { weights_[v] = w; }

  /// Edge ids incident to a vertex (valid after Finalize()).
  const std::vector<uint32_t>& IncidentEdges(VertexId v) const {
    return incident_[v];
  }
  size_t Degree(VertexId v) const { return incident_[v].size(); }

  double WeightOf(const std::vector<VertexId>& vertices) const;

  /// True when no hyperedge is fully contained in `vertices`.
  bool IsIndependentSet(const std::vector<VertexId>& vertices) const;

 private:
  std::vector<double> weights_;
  std::vector<HyperEdge> edges_;
  std::vector<std::vector<uint32_t>> incident_;
  bool finalized_ = false;
};

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_HYPERGRAPH_H_
