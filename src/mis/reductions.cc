#include "mis/reductions.h"

#include <algorithm>
#include <queue>

namespace oct {
namespace mis {

ReductionResult ReduceNeighborhoodRemoval(const Graph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<char> alive(n, 1);
  std::vector<double> nbr_weight(n, 0.0);
  std::vector<size_t> degree(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    for (VertexId u : graph.Neighbors(v)) nbr_weight[v] += graph.weight(u);
  }
  ReductionResult result;
  std::queue<VertexId> work;
  std::vector<char> queued(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    work.push(v);
    queued[v] = 1;
  }
  auto remove_vertex = [&](VertexId v) {
    alive[v] = 0;
    for (VertexId u : graph.Neighbors(v)) {
      if (!alive[u]) continue;
      nbr_weight[u] -= graph.weight(v);
      --degree[u];
      if (!queued[u]) {
        work.push(u);
        queued[u] = 1;
      }
    }
  };
  while (!work.empty()) {
    const VertexId v = work.front();
    work.pop();
    queued[v] = 0;
    if (!alive[v]) continue;
    if (graph.weight(v) >= nbr_weight[v] - 1e-12) {
      // Take v; delete its closed neighborhood.
      result.forced.push_back(v);
      result.forced_weight += graph.weight(v);
      std::vector<VertexId> to_remove;
      for (VertexId u : graph.Neighbors(v)) {
        if (alive[u]) to_remove.push_back(u);
      }
      remove_vertex(v);
      for (VertexId u : to_remove) {
        if (alive[u]) remove_vertex(u);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) result.kernel.push_back(v);
  }
  std::sort(result.forced.begin(), result.forced.end());
  return result;
}

}  // namespace mis
}  // namespace oct
