#include "mis/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace oct {
namespace mis {

Graph::Graph(size_t num_vertices)
    : adj_(num_vertices), weights_(num_vertices, 1.0) {}

void Graph::AddEdge(VertexId u, VertexId v) {
  OCT_DCHECK_LT(u, adj_.size());
  OCT_DCHECK_LT(v, adj_.size());
  if (u == v) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  finalized_ = false;
}

Graph Graph::FromSortedUniquePairs(
    size_t num_vertices, const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  Graph graph(num_vertices);
  std::vector<uint32_t> degree(num_vertices, 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a, b] = pairs[i];
    OCT_DCHECK_LT(a, b);
    OCT_DCHECK_LT(b, num_vertices);
    OCT_DCHECK(i == 0 || pairs[i - 1] < pairs[i]);
    ++degree[a];
    ++degree[b];
  }
  for (VertexId v = 0; v < num_vertices; ++v) graph.adj_[v].reserve(degree[v]);
  // For any vertex v, every pair (a, v) with a < v precedes every pair
  // (v, b) in lexicographic order, and within each role the partners come
  // out ascending — so one ordered scan leaves adj_[v] fully sorted.
  for (const auto& [a, b] : pairs) {
    graph.adj_[a].push_back(b);
    graph.adj_[b].push_back(a);
  }
  graph.num_edges_ = pairs.size();
  graph.finalized_ = true;
  return graph;
}

void Graph::Finalize() {
  num_edges_ = 0;
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    num_edges_ += nbrs.size();
  }
  num_edges_ /= 2;
  finalized_ = true;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  OCT_DCHECK(finalized_);
  const auto& nbrs = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const VertexId target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(nbrs.begin(), nbrs.end(), target);
}

double Graph::WeightOf(const std::vector<VertexId>& vertices) const {
  double w = 0.0;
  for (VertexId v : vertices) w += weights_[v];
  return w;
}

bool Graph::IsIndependentSet(const std::vector<VertexId>& vertices) const {
  std::vector<char> in(adj_.size(), 0);
  for (VertexId v : vertices) {
    OCT_DCHECK_LT(v, adj_.size());
    if (in[v]) return false;  // Duplicate vertex.
    in[v] = 1;
  }
  for (VertexId v : vertices) {
    for (VertexId u : adj_[v]) {
      if (in[u]) return false;
    }
  }
  return true;
}

std::vector<std::vector<VertexId>> Graph::ConnectedComponents() const {
  std::vector<std::vector<VertexId>> components;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < adj_.size(); ++start) {
    if (seen[start]) continue;
    components.emplace_back();
    auto& comp = components.back();
    stack.push_back(start);
    seen[start] = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (VertexId u : adj_[v]) {
        if (!seen[u]) {
          seen[u] = 1;
          stack.push_back(u);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
  }
  return components;
}

Graph Graph::InducedSubgraph(const std::vector<VertexId>& vertices,
                             std::vector<VertexId>* origin_of) const {
  std::vector<VertexId> local(adj_.size(), UINT32_MAX);
  for (size_t i = 0; i < vertices.size(); ++i) {
    local[vertices[i]] = static_cast<VertexId>(i);
  }
  Graph sub(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    sub.set_weight(static_cast<VertexId>(i), weights_[v]);
    for (VertexId u : adj_[v]) {
      if (local[u] != UINT32_MAX && u > v) {
        sub.AddEdge(static_cast<VertexId>(i), local[u]);
      }
    }
  }
  sub.Finalize();
  if (origin_of != nullptr) *origin_of = vertices;
  return sub;
}

}  // namespace mis
}  // namespace oct
