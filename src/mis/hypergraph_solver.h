// Weighted independent set in hypergraphs with 2- and 3-edges, the substrate
// CTCR uses for thresholds < 1 (Section 3.2). Plays the role of the
// partitioning-based bounded-degree hypergraph MIS algorithm of
// Halldórsson-Losievskaja [15]: an exact branch-and-bound for small kernels
// and a greedy + swap local search for large sparse instances.

#ifndef OCT_MIS_HYPERGRAPH_SOLVER_H_
#define OCT_MIS_HYPERGRAPH_SOLVER_H_

#include "fault/cancel.h"
#include "mis/graph.h"
#include "mis/hypergraph.h"

namespace oct {
namespace mis {

struct HypergraphSolverOptions {
  /// Exact branch-and-bound is attempted when the post-reduction kernel has
  /// at most this many vertices.
  size_t exact_vertex_limit = 48;
  /// Node budget for the exact search.
  size_t max_nodes = 2'000'000;
  /// Local-search swap passes.
  size_t swap_rounds = 4;
  uint64_t seed = 42;
  /// Deadline/cancellation (not owned; may be null): the search stops at
  /// the next poll boundary, keeping the best valid selection so far.
  const fault::CancelToken* cancel = nullptr;
};

/// Computes a heavy independent set (no hyperedge fully selected).
/// `optimal` is set only when the instance was solved exactly.
MisSolution SolveHypergraphMis(const Hypergraph& hypergraph,
                               const HypergraphSolverOptions& options = {});

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_HYPERGRAPH_SOLVER_H_
