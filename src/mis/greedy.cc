#include "mis/greedy.h"

#include <algorithm>
#include <numeric>

namespace oct {
namespace mis {

MisSolution SolveGreedy(const Graph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const double ka = graph.weight(a) / static_cast<double>(graph.Degree(a) + 1);
    const double kb = graph.weight(b) / static_cast<double>(graph.Degree(b) + 1);
    if (ka != kb) return ka > kb;
    return a < b;
  });
  std::vector<char> blocked(n, 0);
  MisSolution sol;
  for (VertexId v : order) {
    if (blocked[v]) continue;
    sol.vertices.push_back(v);
    sol.weight += graph.weight(v);
    for (VertexId u : graph.Neighbors(v)) blocked[u] = 1;
  }
  std::sort(sol.vertices.begin(), sol.vertices.end());
  return sol;
}

}  // namespace mis
}  // namespace oct
