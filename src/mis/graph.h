// Weighted undirected graph for the Maximum (weight) Independent Set
// substrate that CTCR reduces conflict resolution to (Section 3).

#ifndef OCT_MIS_GRAPH_H_
#define OCT_MIS_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oct {
namespace mis {

using VertexId = uint32_t;

/// An undirected graph with non-negative vertex weights. Build by AddEdge,
/// then call Finalize() before queries (sorts/dedups adjacency lists).
class Graph {
 public:
  explicit Graph(size_t num_vertices);

  size_t num_vertices() const { return adj_.size(); }
  /// Number of undirected edges (valid after Finalize()).
  size_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge; self-loops are ignored. Duplicate insertions
  /// are deduplicated by Finalize().
  void AddEdge(VertexId u, VertexId v);

  /// Bulk constructor from edges already sorted lexicographically with
  /// first < second and no duplicates (the shape conflict enumeration
  /// emits). Arrives finalized without any per-list sorting: a single scan
  /// in that order appends every adjacency list in ascending neighbor
  /// order. Weights default to 1.0; set them afterwards.
  static Graph FromSortedUniquePairs(
      size_t num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& pairs);

  /// Sorts and dedups adjacency lists; must be called before queries.
  void Finalize();

  const std::vector<VertexId>& Neighbors(VertexId v) const { return adj_[v]; }
  size_t Degree(VertexId v) const { return adj_[v].size(); }
  bool HasEdge(VertexId u, VertexId v) const;

  double weight(VertexId v) const { return weights_[v]; }
  void set_weight(VertexId v, double w) { weights_[v] = w; }
  const std::vector<double>& weights() const { return weights_; }

  /// Sum of weights over `vertices`.
  double WeightOf(const std::vector<VertexId>& vertices) const;

  /// True when no two vertices of `vertices` are adjacent.
  bool IsIndependentSet(const std::vector<VertexId>& vertices) const;

  /// Vertex sets of connected components.
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  /// Subgraph induced by `vertices`; `origin_of[i]` gives the original id of
  /// new vertex i.
  Graph InducedSubgraph(const std::vector<VertexId>& vertices,
                        std::vector<VertexId>* origin_of) const;

 private:
  std::vector<std::vector<VertexId>> adj_;
  std::vector<double> weights_;
  size_t num_edges_ = 0;
  bool finalized_ = false;
};

/// A solution to a (hyper)graph MIS instance.
struct MisSolution {
  std::vector<VertexId> vertices;
  double weight = 0.0;
  /// True when the solver proved optimality.
  bool optimal = false;
};

}  // namespace mis
}  // namespace oct

#endif  // OCT_MIS_GRAPH_H_
